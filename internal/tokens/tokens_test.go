package tokens_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tokens"
	"repro/internal/transport"
)

type tworld struct {
	t     *testing.T
	net   *netsim.Network
	alloc *tokens.Allocator
}

func newTWorld(t *testing.T, initial tokens.Bag, opts ...netsim.Option) *tworld {
	t.Helper()
	n := netsim.New(opts...)
	t.Cleanup(n.Close)
	w := &tworld{t: t, net: n}
	hub := w.dapplet("hub", "allocator-host")
	w.alloc = tokens.Serve(hub, initial)
	return w
}

func (w *tworld) dapplet(host, name string) *core.Dapplet {
	w.t.Helper()
	ep, err := w.net.Host(host).BindAny()
	if err != nil {
		w.t.Fatal(err)
	}
	d := core.NewDapplet(name, "t", transport.NewSimConn(ep),
		core.WithTransportConfig(transport.Config{RTO: 20 * time.Millisecond}))
	w.t.Cleanup(d.Stop)
	return d
}

func (w *tworld) manager(host, name string) *tokens.Manager {
	return tokens.NewManager(w.dapplet(host, name), w.alloc.Ref())
}

func TestBagOperations(t *testing.T) {
	b := tokens.Bag{"red": 2, "blue": 1}
	if b.Count() != 3 || b.IsEmpty() {
		t.Fatalf("count = %d", b.Count())
	}
	c := b.Copy()
	c.Add(tokens.Bag{"red": 1})
	if b["red"] != 2 || c["red"] != 3 {
		t.Fatal("Copy aliases")
	}
	if !c.Contains(tokens.Bag{"red": 3, "blue": 1}) {
		t.Fatal("Contains false negative")
	}
	if c.Contains(tokens.Bag{"green": 1}) {
		t.Fatal("Contains false positive")
	}
	if ok := c.Sub(tokens.Bag{"red": 99}); ok {
		t.Fatal("oversubtraction allowed")
	}
	if !c.Sub(tokens.Bag{"red": 3}) {
		t.Fatal("valid subtraction refused")
	}
	if _, present := c["red"]; present {
		t.Fatal("zero entry not normalized away")
	}
	n := tokens.Bag{"x": 0, "y": -3, "z": 1}.Normalize()
	if len(n) != 1 || n["z"] != 1 {
		t.Fatalf("Normalize = %v", n)
	}
}

func TestBagAddSubInverseProperty(t *testing.T) {
	f := func(r1, b1, r2, b2 uint8) bool {
		base := tokens.Bag{"r": int(r1%50) + 1, "b": int(b1%50) + 1}
		delta := tokens.Bag{"r": int(r2 % uint8(base["r"])), "b": int(b2 % uint8(base["b"]))}.Normalize()
		got := base.Copy()
		got.Add(delta)
		if !got.Sub(delta) {
			return false
		}
		return got.Count() == base.Count() && got["r"] == base["r"] && got["b"] == base["b"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestReleaseHoldsTotal(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"file": 3, "printer": 1})
	m := w.manager("caltech", "mani")

	tot, err := m.TotalTokens()
	if err != nil {
		t.Fatal(err)
	}
	if tot["file"] != 3 || tot["printer"] != 1 {
		t.Fatalf("total = %v", tot)
	}

	if err := m.Request(tokens.Bag{"file": 2}); err != nil {
		t.Fatal(err)
	}
	if h := m.Holds(); h["file"] != 2 {
		t.Fatalf("holds = %v", h)
	}
	if err := m.Release(tokens.Bag{"file": 1}); err != nil {
		t.Fatal(err)
	}
	if h := m.Holds(); h["file"] != 1 {
		t.Fatalf("holds after release = %v", h)
	}
	if !w.alloc.ConservationHolds() {
		t.Fatal("conservation violated")
	}
}

func TestReleaseNotHeld(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"x": 1})
	m := w.manager("h", "greedy")
	if err := m.Release(tokens.Bag{"x": 1}); !errors.Is(err, tokens.ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
	if err := m.Request(tokens.Bag{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(tokens.Bag{"x": 2}); !errors.Is(err, tokens.ErrNotHeld) {
		t.Fatalf("over-release err = %v", err)
	}
	// The failed release must not have leaked anything.
	if h := m.Holds(); h["x"] != 1 {
		t.Fatalf("holds = %v", h)
	}
}

func TestUnknownColor(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"x": 1})
	m := w.manager("h", "confused")
	if err := m.Request(tokens.Bag{"nonexistent": 1}); !errors.Is(err, tokens.ErrUnknownColor) {
		t.Fatalf("err = %v, want ErrUnknownColor", err)
	}
}

func TestRequestBlocksUntilRelease(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"mutex": 1})
	holder := w.manager("h1", "holder")
	waiter := w.manager("h2", "waiter")
	if err := holder.Request(tokens.Bag{"mutex": 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- waiter.Request(tokens.Bag{"mutex": 1}) }()
	select {
	case err := <-got:
		t.Fatalf("waiter acquired held token: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := holder.Release(tokens.Bag{"mutex": 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after release")
	}
}

func TestMutualExclusionWithSingleToken(t *testing.T) {
	// "Suppose we want at most one process to modify an object at any
	// point: we associate a single token with that object" (§4.1).
	w := newTWorld(t, tokens.Bag{"object": 1})
	const workers, rounds = 4, 10
	var inCS, maxCS int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		m := w.manager("h", "w"+string(rune('0'+i)))
		wg.Add(1)
		go func(m *tokens.Manager) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := m.Request(tokens.Bag{"object": 1}); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				mu.Unlock()
				mu.Lock()
				inCS--
				mu.Unlock()
				if err := m.Release(tokens.Bag{"object": 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
	if maxCS != 1 {
		t.Fatalf("mutual exclusion violated: %d concurrent holders", maxCS)
	}
	if !w.alloc.ConservationHolds() {
		t.Fatal("conservation violated")
	}
}

func TestDeadlockDetectionTwoPhilosophers(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"fork1": 1, "fork2": 1})
	a := w.manager("h1", "philosopher-a")
	b := w.manager("h2", "philosopher-b")
	if err := a.Request(tokens.Bag{"fork1": 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Request(tokens.Bag{"fork2": 1}); err != nil {
		t.Fatal(err)
	}
	// Now cross-request: a deadlock the managers must detect.
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() { errA <- a.Request(tokens.Bag{"fork2": 1}) }()
	go func() { errB <- b.Request(tokens.Bag{"fork1": 1}) }()
	deadlocked := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errA:
			if errors.Is(err, tokens.ErrDeadlock) {
				deadlocked++
			} else if err != nil {
				t.Fatalf("a: %v", err)
			}
			errA = nil
		case err := <-errB:
			if errors.Is(err, tokens.ErrDeadlock) {
				deadlocked++
			} else if err != nil {
				t.Fatalf("b: %v", err)
			}
			errB = nil
		case <-time.After(10 * time.Second):
			t.Fatalf("deadlock not detected (stats=%+v)", w.alloc.Stats())
		}
	}
	if deadlocked == 0 {
		t.Fatal("no request received the deadlock exception")
	}
	if st := w.alloc.Stats(); st.Deadlocks == 0 {
		t.Fatalf("allocator counted no deadlocks: %+v", st)
	}
	if !w.alloc.ConservationHolds() {
		t.Fatal("conservation violated after deadlock")
	}
}

func TestNoFalseDeadlockWithFreeableHolder(t *testing.T) {
	// a blocks on "blue" held by b, but b is NOT blocked, so the graph
	// reduces and no deadlock may be declared.
	w := newTWorld(t, tokens.Bag{"blue": 1, "red": 2})
	a := w.manager("h1", "a")
	b := w.manager("h2", "b")
	if err := b.Request(tokens.Bag{"blue": 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- a.Request(tokens.Bag{"blue": 1}) }()
	select {
	case err := <-got:
		t.Fatalf("premature completion: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := b.Release(tokens.Bag{"blue": 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("false deadlock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("grant never arrived")
	}
}

func TestDiningPhilosophersOrderedAcquisitionCompletes(t *testing.T) {
	// With a release-all-before-requesting discipline (request both forks
	// atomically), the paper promises deadlock freedom.
	const n = 5
	initial := tokens.Bag{}
	for i := 0; i < n; i++ {
		initial[tokens.Color("fork"+string(rune('0'+i)))] = 1
	}
	w := newTWorld(t, initial)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		m := w.manager("h", "phil"+string(rune('0'+i)))
		left := tokens.Color("fork" + string(rune('0'+i)))
		right := tokens.Color("fork" + string(rune('0'+(i+1)%n)))
		wg.Add(1)
		go func(m *tokens.Manager) {
			defer wg.Done()
			for meal := 0; meal < 5; meal++ {
				// Atomic multi-resource request: no hold-and-wait.
				if err := m.Request(tokens.Bag{left: 1, right: 1}); err != nil {
					t.Errorf("%v", err)
					return
				}
				if err := m.Release(tokens.Bag{left: 1, right: 1}); err != nil {
					t.Errorf("%v", err)
					return
				}
			}
		}(m)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("philosophers starved")
	}
	if st := w.alloc.Stats(); st.Deadlocks != 0 {
		t.Fatalf("spurious deadlocks: %+v", st)
	}
	if !w.alloc.ConservationHolds() {
		t.Fatal("conservation violated")
	}
}

func TestTimestampPriorityOnContention(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"t": 1})
	holder := w.manager("h0", "holder")
	early := w.manager("h1", "a-early")
	late := w.manager("h2", "b-late")
	if err := holder.Request(tokens.Bag{"t": 1}); err != nil {
		t.Fatal(err)
	}
	// Give the late requester a much larger clock so its stamp loses.
	for i := 0; i < 100; i++ {
		late.Holds() // no-op; advance real time slightly
	}
	lateD := late
	_ = lateD
	earlyC := make(chan error, 1)
	lateC := make(chan error, 1)
	go func() { earlyC <- early.Request(tokens.Bag{"t": 1}) }()
	time.Sleep(50 * time.Millisecond) // ensure early's request arrives first
	go func() { lateC <- late.Request(tokens.Bag{"t": 1}) }()
	time.Sleep(50 * time.Millisecond)
	if err := holder.Release(tokens.Bag{"t": 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-earlyC:
		if err != nil {
			t.Fatal(err)
		}
	case <-lateC:
		t.Fatal("later-stamped request granted first")
	case <-time.After(5 * time.Second):
		t.Fatal("no grant at all")
	}
	// Clean up: release so the late requester completes.
	if err := early.Release(tokens.Bag{"t": 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-lateC:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late requester starved")
	}
}

func TestRequestAllAndRWLock(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"doc": 3})
	writer := w.manager("h1", "writer")
	r1 := w.manager("h2", "reader1")
	r2 := w.manager("h3", "reader2")

	// Two concurrent readers are fine.
	l1, l2 := tokens.NewRWLock(r1, "doc"), tokens.NewRWLock(r2, "doc")
	if err := l1.RLock(); err != nil {
		t.Fatal(err)
	}
	if err := l2.RLock(); err != nil {
		t.Fatal(err)
	}

	// Writer must wait for all tokens.
	wl := tokens.NewRWLock(writer, "doc")
	wGot := make(chan error, 1)
	go func() { wGot <- wl.Lock() }()
	select {
	case err := <-wGot:
		t.Fatalf("writer locked alongside readers: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := l1.RUnlock(); err != nil {
		t.Fatal(err)
	}
	if err := l2.RUnlock(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wGot:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer starved")
	}
	if writer.Holds()["doc"] != 3 {
		t.Fatalf("writer holds %v", writer.Holds())
	}
	// Readers blocked while writer holds all tokens.
	rGot := make(chan error, 1)
	go func() { rGot <- l1.RLock() }()
	select {
	case err := <-rGot:
		t.Fatalf("reader locked alongside writer: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := wl.Unlock(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-rGot:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader starved after writer unlock")
	}
	if err := l1.RUnlock(); err != nil {
		t.Fatal(err)
	}
	if err := wl.Unlock(); !errors.Is(err, tokens.ErrNotHeld) {
		t.Fatalf("double unlock err = %v", err)
	}
}

func TestConservationUnderRandomWorkload(t *testing.T) {
	w := newTWorld(t, tokens.Bag{"a": 4, "b": 3, "c": 2}, netsim.WithSeed(99))
	m := w.manager("h", "rand-client")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		free := w.alloc.Free()
		want := tokens.Bag{}
		for c, n := range free {
			if n > 0 {
				want[c] = rng.Intn(n + 1)
			}
		}
		want.Normalize()
		if want.IsEmpty() {
			continue
		}
		if err := m.Request(want); err != nil {
			t.Fatal(err)
		}
		if !w.alloc.ConservationHolds() {
			t.Fatalf("conservation violated after request %d", i)
		}
		if err := m.ReleaseAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the final release settle, then verify everything returned.
	deadline := time.Now().Add(5 * time.Second)
	for w.alloc.Free().Count() != 9 {
		if time.Now().After(deadline) {
			t.Fatalf("tokens leaked: free=%v", w.alloc.Free())
		}
		time.Sleep(time.Millisecond)
	}
	if !w.alloc.ConservationHolds() {
		t.Fatal("conservation violated at end")
	}
}
