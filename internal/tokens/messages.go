package tokens

import (
	"repro/internal/lclock"
	"repro/internal/wire"
)

// reqMsg asks the allocator for tokens. Want lists explicit counts;
// AllOf lists colours for which the dapplet wants every token in the
// system ("the request can ask for all tokens of a given color").
type reqMsg struct {
	ReqID   uint64        `json:"id"`
	Client  string        `json:"c"`
	Stamp   lclock.Stamp  `json:"ts"`
	Want    Bag           `json:"w,omitempty"`
	AllOf   []Color       `json:"all,omitempty"`
	ReplyTo wire.InboxRef `json:"re"`
}

func (*reqMsg) Kind() string { return "tokens.request" }

// grantMsg satisfies a request; Granted resolves AllOf colours to counts.
// Serials carries, for each granted colour, the cumulative number of
// grants of that colour — a total order over acquisitions that clients can
// use as a sequencer (e.g. document version numbers).
type grantMsg struct {
	ReqID   uint64           `json:"id"`
	Granted Bag              `json:"g"`
	Serials map[Color]uint64 `json:"s,omitempty"`
}

func (*grantMsg) Kind() string { return "tokens.grant" }

// denyMsg fails a request, e.g. on deadlock or an unknown colour.
type denyMsg struct {
	ReqID    uint64 `json:"id"`
	Reason   string `json:"why"`
	Deadlock bool   `json:"dl,omitempty"`
	BadColor bool   `json:"bc,omitempty"`
}

func (*denyMsg) Kind() string { return "tokens.deny" }

// relMsg returns tokens to the allocator.
type relMsg struct {
	Client string `json:"c"`
	Give   Bag    `json:"g"`
}

func (*relMsg) Kind() string { return "tokens.release" }

// totalReqMsg queries the fixed token totals.
type totalReqMsg struct {
	ReqID   uint64        `json:"id"`
	ReplyTo wire.InboxRef `json:"re"`
}

func (*totalReqMsg) Kind() string { return "tokens.total-req" }

// totalRepMsg answers a totals query.
type totalRepMsg struct {
	ReqID uint64 `json:"id"`
	Total Bag    `json:"t"`
}

func (*totalRepMsg) Kind() string { return "tokens.total-rep" }

func init() {
	wire.Register(&reqMsg{})
	wire.Register(&grantMsg{})
	wire.Register(&denyMsg{})
	wire.Register(&relMsg{})
	wire.Register(&totalReqMsg{})
	wire.Register(&totalRepMsg{})
}
