package tokens

import (
	"errors"

	"repro/internal/wire"
)

// Color is a resource type; tokens of one colour cannot be transmuted
// into tokens of another colour.
type Color string

// Bag is a multiset of tokens by colour. A Bag never contains
// non-positive counts (such entries are dropped by Normalize).
type Bag map[Color]int

// Copy returns an independent copy of b.
func (b Bag) Copy() Bag {
	out := make(Bag, len(b))
	for c, n := range b {
		out[c] = n
	}
	return out
}

// Normalize removes non-positive entries in place and returns b.
func (b Bag) Normalize() Bag {
	for c, n := range b {
		if n <= 0 {
			delete(b, c)
		}
	}
	return b
}

// Add folds o into b.
func (b Bag) Add(o Bag) {
	for c, n := range o {
		b[c] += n
	}
	b.Normalize()
}

// Sub removes o from b; it reports false (leaving b unchanged) if b does
// not contain o.
func (b Bag) Sub(o Bag) bool {
	if !b.Contains(o) {
		return false
	}
	for c, n := range o {
		b[c] -= n
	}
	b.Normalize()
	return true
}

// Contains reports whether b has at least o of every colour.
func (b Bag) Contains(o Bag) bool {
	for c, n := range o {
		if b[c] < n {
			return false
		}
	}
	return true
}

// Count returns the total number of tokens across colours.
func (b Bag) Count() int {
	t := 0
	for _, n := range b {
		t += n
	}
	return t
}

// IsEmpty reports whether the bag holds no tokens.
func (b Bag) IsEmpty() bool { return b.Count() == 0 }

// Errors raised by the token service.
var (
	// ErrDeadlock is the paper's exception: "If the token managers detect
	// a deadlock, an exception is raised."
	ErrDeadlock = errors.New("tokens: deadlock detected")
	// ErrNotHeld is raised when releasing tokens the dapplet does not
	// hold: "If the tokens specified in tokenList are not in holdsTokens,
	// an exception is raised."
	ErrNotHeld = errors.New("tokens: releasing tokens not held")
	// ErrUnknownColor is raised when requesting a colour that does not
	// exist in the system.
	ErrUnknownColor = errors.New("tokens: unknown color")
	// ErrClosed is returned after the manager's dapplet stops.
	ErrClosed = errors.New("tokens: closed")
)

// Well-known inbox names of the token service.
const (
	// AllocInbox is the allocator's control inbox.
	AllocInbox = "@tokens"
	// clientInbox receives the allocator's replies at each manager.
	clientInbox = "@tokens-client"
)

// AllocRef returns the allocator control inbox on the given dapplet
// address.
func AllocRef(d wire.InboxRef) wire.InboxRef { return d }
