package tokens

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// AllocStats counts allocator events.
type AllocStats struct {
	Requests  uint64
	Grants    uint64
	Denies    uint64
	Deadlocks uint64 // requests denied due to deadlock
	Releases  uint64
}

// pendReq is a queued request ordered by logical timestamp.
type pendReq struct {
	req  *reqMsg
	want Bag // explicit want with AllOf colours resolved
}

// Allocator is the hub of a network of token managers: it owns the fixed
// token population of a session and serves request/release/total traffic
// on the dapplet's AllocInbox.
type Allocator struct {
	d *core.Dapplet

	mu      sync.Mutex
	total   Bag
	free    Bag
	holds   map[string]Bag
	serials map[Color]uint64
	pending []*pendReq
	stats   AllocStats
}

// Serve starts a token allocator on the dapplet with the given initial
// token population. "The dapplet that constructs the network of token
// managers ensures that the initial number of tokens is set appropriately"
// (§4.1).
func Serve(d *core.Dapplet, initial Bag) *Allocator {
	a := &Allocator{
		d:       d,
		total:   initial.Copy().Normalize(),
		free:    initial.Copy().Normalize(),
		holds:   make(map[string]Bag),
		serials: make(map[Color]uint64),
	}
	d.Handle(AllocInbox, a.handle)
	return a
}

// Ref returns the allocator's control inbox reference, which managers
// connect to.
func (a *Allocator) Ref() wire.InboxRef {
	return wire.InboxRef{Dapplet: a.d.Addr(), Inbox: AllocInbox}
}

// Total returns the fixed token population.
func (a *Allocator) Total() Bag {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total.Copy()
}

// Free returns the tokens currently held by the manager network itself.
func (a *Allocator) Free() Bag {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free.Copy()
}

// Holds returns a copy of every dapplet's holdings.
func (a *Allocator) Holds() map[string]Bag {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]Bag, len(a.holds))
	for c, b := range a.holds {
		out[c] = b.Copy()
	}
	return out
}

// Stats returns a snapshot of allocator counters.
func (a *Allocator) Stats() AllocStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ConservationHolds verifies the token invariant: "the total number of
// tokens of each colour in the system remains unchanged."
func (a *Allocator) ConservationHolds() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	sum := a.free.Copy()
	for _, h := range a.holds {
		sum.Add(h)
	}
	if len(sum) != len(a.total) {
		return false
	}
	for c, n := range a.total {
		if sum[c] != n {
			return false
		}
	}
	return true
}

func (a *Allocator) handle(env *wire.Envelope) {
	switch m := env.Body.(type) {
	case *reqMsg:
		a.onRequest(m)
	case *relMsg:
		a.onRelease(m)
	case *totalReqMsg:
		a.mu.Lock()
		tot := a.total.Copy()
		a.mu.Unlock()
		_ = a.d.SendDirect(m.ReplyTo, "", &totalRepMsg{ReqID: m.ReqID, Total: tot})
	}
}

func (a *Allocator) onRequest(m *reqMsg) {
	a.mu.Lock()
	a.stats.Requests++

	// Resolve the effective want, expanding AllOf colours to the total
	// population of that colour.
	want := m.Want.Copy().Normalize()
	for _, c := range m.AllOf {
		want[c] = a.total[c]
	}
	// Requests for colours that do not exist can never be satisfied.
	for c := range want {
		if _, ok := a.total[c]; !ok {
			a.stats.Denies++
			a.mu.Unlock()
			_ = a.d.SendDirect(m.ReplyTo, "", &denyMsg{
				ReqID: m.ReqID, Reason: "unknown color " + string(c), BadColor: true,
			})
			return
		}
	}

	a.pending = append(a.pending, &pendReq{req: m, want: want})
	// Conflicts are resolved in favour of the earlier timestamp, ties by
	// lower id (§4.2): keep the queue sorted accordingly.
	sort.SliceStable(a.pending, func(i, j int) bool {
		return a.pending[i].req.Stamp.Less(a.pending[j].req.Stamp)
	})
	grants, denies := a.scanLocked()
	a.mu.Unlock()
	a.dispatch(grants, denies)
}

func (a *Allocator) onRelease(m *relMsg) {
	a.mu.Lock()
	give := m.Give.Copy().Normalize()
	h := a.holds[m.Client]
	if h == nil || !h.Sub(give) {
		// The manager already raised ErrNotHeld locally; ignore the
		// inconsistent release to preserve conservation.
		a.mu.Unlock()
		return
	}
	if h.IsEmpty() {
		delete(a.holds, m.Client)
	}
	a.free.Add(give)
	a.stats.Releases++
	grants, denies := a.scanLocked()
	a.mu.Unlock()
	a.dispatch(grants, denies)
}

type reply struct {
	to  wire.InboxRef
	msg wire.Msg
}

func (a *Allocator) dispatch(grants, denies []reply) {
	for _, r := range grants {
		_ = a.d.SendDirect(r.to, "", r.msg)
	}
	for _, r := range denies {
		_ = a.d.SendDirect(r.to, "", r.msg)
	}
}

// scanLocked grants every satisfiable pending request in timestamp order,
// then runs deadlock detection on the remainder. It returns the replies
// to send after the lock is released.
func (a *Allocator) scanLocked() (grants, denies []reply) {
	progress := true
	for progress {
		progress = false
		for i, p := range a.pending {
			if !a.free.Contains(p.want) {
				continue
			}
			a.free.Sub(p.want)
			h := a.holds[p.req.Client]
			if h == nil {
				h = make(Bag)
				a.holds[p.req.Client] = h
			}
			h.Add(p.want)
			a.stats.Grants++
			serials := make(map[Color]uint64, len(p.want))
			for c := range p.want {
				a.serials[c]++
				serials[c] = a.serials[c]
			}
			grants = append(grants, reply{
				to:  p.req.ReplyTo,
				msg: &grantMsg{ReqID: p.req.ReqID, Granted: p.want.Copy(), Serials: serials},
			})
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			progress = true
			break
		}
	}
	if len(a.pending) == 0 {
		return grants, denies
	}

	// Deadlock detection by graph reduction: work starts with the free
	// tokens plus the holdings of every dapplet that is not blocked
	// (those release all resources within finite time, §4.2). Any blocked
	// request that still cannot complete at the fixpoint is deadlocked.
	work := a.free.Copy()
	blockedBy := make(map[string]*pendReq, len(a.pending))
	for _, p := range a.pending {
		blockedBy[p.req.Client] = p
	}
	for client, h := range a.holds {
		if _, blocked := blockedBy[client]; !blocked {
			work.Add(h)
		}
	}
	finished := true
	for finished {
		finished = false
		for client, p := range blockedBy {
			if work.Contains(p.want) {
				work.Add(a.holds[client])
				delete(blockedBy, client)
				finished = true
			}
		}
	}
	if len(blockedBy) == 0 {
		return grants, denies
	}
	// Raise the exception to every request in the deadlocked set.
	var kept []*pendReq
	for _, p := range a.pending {
		if _, dead := blockedBy[p.req.Client]; !dead {
			kept = append(kept, p)
			continue
		}
		a.stats.Denies++
		a.stats.Deadlocks++
		denies = append(denies, reply{
			to:  p.req.ReplyTo,
			msg: &denyMsg{ReqID: p.req.ReqID, Reason: "deadlock among token holders", Deadlock: true},
		})
	}
	a.pending = kept
	return grants, denies
}
