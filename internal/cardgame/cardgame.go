// Package cardgame implements the paper's ring-session example (§3.1):
// "in a distributed card game session, a player dapplet may be linked to
// its predecessor and successor player dapplets, which correspond to the
// players to its left and right respectively."
//
// The game: a dealer deals each player a hand of ranked cards and injects
// a turn token. On its turn a player passes its lowest card (and the turn)
// to its successor; a player holding four cards of one rank announces the
// win to the dealer and the game stops. If the token completes the round
// limit with no winner, the current holder reports a draw. The total card
// population is conserved throughout — the token-invariant of §4.1 in
// game form.
package cardgame

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Inbox/outbox names of the game wiring.
const (
	// PredInbox receives cards and the turn token from the predecessor.
	PredInbox = "pred"
	// SuccOutbox sends to the successor player.
	SuccOutbox = "succ"
	// TableInbox is the dealer's inbox for announcements.
	TableInbox = "table"
	// AnnounceOutbox is each player's outbox toward the dealer.
	AnnounceOutbox = "announce"
	// WinLength is how many cards of one rank win.
	WinLength = 4
)

// dealMsg gives a player its initial hand.
type dealMsg struct {
	Hand []int `json:"h"`
}

// Kind implements wire.Msg.
func (*dealMsg) Kind() string { return "cards.deal" }

// AppendBinary implements wire.BinaryMessage.
func (m *dealMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendUvarint(dst, uint64(len(m.Hand)))
	for _, c := range m.Hand {
		dst = wire.AppendVarint(dst, int64(c))
	}
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (m *dealMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if n := r.Count(); n > 0 {
		m.Hand = make([]int, n)
		for i := range m.Hand {
			m.Hand[i] = int(r.Varint())
		}
	} else {
		m.Hand = nil
	}
	return r.Done()
}

// turnMsg passes the turn token and one card to the successor.
type turnMsg struct {
	Card    int  `json:"c"`
	HasCard bool `json:"hc"`
	Hops    int  `json:"hops"`
	MaxHops int  `json:"max"`
}

// Kind implements wire.Msg.
func (*turnMsg) Kind() string { return "cards.turn" }

// AppendBinary implements wire.BinaryMessage: the turn token is the
// per-hop unit of ring traffic, so it takes the binary fast path.
func (m *turnMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendVarint(dst, int64(m.Card))
	dst = wire.AppendBool(dst, m.HasCard)
	dst = wire.AppendVarint(dst, int64(m.Hops))
	dst = wire.AppendVarint(dst, int64(m.MaxHops))
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (m *turnMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	m.Card = int(r.Varint())
	m.HasCard = r.Bool()
	m.Hops = int(r.Varint())
	m.MaxHops = int(r.Varint())
	return r.Done()
}

// announceMsg reports the game result to the dealer.
type announceMsg struct {
	Player string `json:"p"`
	Rank   int    `json:"r"`
	Winner bool   `json:"w"`
	Hops   int    `json:"hops"`
}

// Kind implements wire.Msg.
func (*announceMsg) Kind() string { return "cards.announce" }

// AppendBinary implements wire.BinaryMessage.
func (m *announceMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendString(dst, m.Player)
	dst = wire.AppendVarint(dst, int64(m.Rank))
	dst = wire.AppendBool(dst, m.Winner)
	dst = wire.AppendVarint(dst, int64(m.Hops))
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (m *announceMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	m.Player = r.String()
	m.Rank = int(r.Varint())
	m.Winner = r.Bool()
	m.Hops = int(r.Varint())
	return r.Done()
}

func init() {
	wire.Register(&dealMsg{})
	wire.Register(&turnMsg{})
	wire.Register(&announceMsg{})
}

// Player is the card-player dapplet behaviour.
type Player struct {
	mu   sync.Mutex
	hand []int
	done bool
	d    *core.Dapplet
}

// NewPlayer creates a player with an empty hand (the dealer deals).
func NewPlayer() *Player { return &Player{} }

// Start implements core.Behavior.
func (p *Player) Start(d *core.Dapplet) error {
	p.d = d
	d.Handle(PredInbox, p.onMessage)
	return nil
}

// Hand returns a copy of the player's current hand.
func (p *Player) Hand() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.hand...)
}

// winningRank returns the rank held WinLength times, or -1.
func winningRank(hand []int) int {
	count := make(map[int]int)
	for _, c := range hand {
		count[c]++
		if count[c] >= WinLength {
			return c
		}
	}
	return -1
}

func (p *Player) onMessage(env *wire.Envelope) {
	switch m := env.Body.(type) {
	case *dealMsg:
		p.mu.Lock()
		p.hand = append([]int(nil), m.Hand...)
		p.mu.Unlock()
	case *turnMsg:
		p.onTurn(m)
	}
}

func (p *Player) onTurn(m *turnMsg) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	if m.HasCard {
		p.hand = append(p.hand, m.Card)
	}
	if rank := winningRank(p.hand); rank >= 0 {
		p.done = true
		hops := m.Hops
		p.mu.Unlock()
		_ = p.d.Outbox(AnnounceOutbox).Send(&announceMsg{
			Player: p.d.Name(), Rank: rank, Winner: true, Hops: hops,
		})
		return
	}
	if m.Hops >= m.MaxHops {
		p.done = true
		p.mu.Unlock()
		_ = p.d.Outbox(AnnounceOutbox).Send(&announceMsg{
			Player: p.d.Name(), Winner: false, Hops: m.Hops,
		})
		return
	}
	// Pass the lowest card with the turn.
	next := &turnMsg{Hops: m.Hops + 1, MaxHops: m.MaxHops}
	if len(p.hand) > 0 {
		sort.Ints(p.hand)
		next.Card = p.hand[0]
		next.HasCard = true
		p.hand = p.hand[1:]
	}
	p.mu.Unlock()
	_ = p.d.Outbox(SuccOutbox).Send(next)
}

// Dealer runs the game from the dealer dapplet: it deals hands, injects
// the turn token at the first player, and reports the announcement.
type Dealer struct {
	d *core.Dapplet
}

// NewDealer wraps a dapplet as the game's dealer. The dapplet's "deal"
// outbox must not be used; dealing is point-to-point.
func NewDealer(d *core.Dapplet) *Dealer {
	d.Inbox(TableInbox)
	return &Dealer{d: d}
}

// Result is the dealer's view of a finished game.
type Result struct {
	Winner string
	Rank   int
	Hops   int
	Draw   bool
}

// Deal sends each player its hand.
func (dl *Dealer) Deal(players []wire.InboxRef, hands [][]int) error {
	for i, p := range players {
		if err := dl.d.SendDirect(p, "", &dealMsg{Hand: hands[i]}); err != nil {
			return err
		}
	}
	return nil
}

// Run injects the turn at the first player and waits for an announcement.
func (dl *Dealer) Run(first wire.InboxRef, maxHops int) (Result, error) {
	if err := dl.d.SendDirect(first, "", &turnMsg{MaxHops: maxHops}); err != nil {
		return Result{}, err
	}
	for {
		env, err := dl.d.Inbox(TableInbox).ReceiveEnvelope()
		if err != nil {
			return Result{}, err
		}
		a, ok := env.Body.(*announceMsg)
		if !ok {
			continue
		}
		return Result{Winner: a.Player, Rank: a.Rank, Hops: a.Hops, Draw: !a.Winner}, nil
	}
}
