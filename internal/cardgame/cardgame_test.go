package cardgame_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cardgame"
	"repro/internal/scenario"
)

func build(t *testing.T, opts scenario.CardOptions) *scenario.CardWorld {
	t.Helper()
	w, err := scenario.BuildCardGame(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestDealDistributesHands(t *testing.T) {
	w := build(t, scenario.CardOptions{Players: 4, HandSize: 5, Seed: 1})
	deadline := time.Now().Add(5 * time.Second)
	for w.CardsHeld() != w.TotalCards() {
		if time.Now().After(deadline) {
			t.Fatalf("hands incomplete: %d of %d", w.CardsHeld(), w.TotalCards())
		}
		time.Sleep(time.Millisecond)
	}
	for i, p := range w.Players {
		if len(p.Hand()) != 5 {
			t.Fatalf("player %d hand = %v", i, p.Hand())
		}
	}
}

func TestGameTerminatesWithWinnerOrDraw(t *testing.T) {
	w := build(t, scenario.CardOptions{Players: 4, HandSize: 6, Ranks: 3, Seed: 2})
	done := make(chan cardgame.Result, 1)
	go func() {
		res, err := w.Dealer.Run(w.Refs[0], 200)
		if err != nil {
			t.Error(err)
			return
		}
		done <- res
	}()
	select {
	case res := <-done:
		if !res.Draw && res.Winner == "" {
			t.Fatalf("result = %+v", res)
		}
		if res.Draw && res.Hops < 200 {
			t.Fatalf("draw before hop limit: %+v", res)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("game never terminated")
	}
}

func TestRiggedGameHasDeterministicWinner(t *testing.T) {
	// Player 1 is dealt three aces (rank 0); player 0 is dealt the
	// fourth and must pass it on its first turn (lowest card first),
	// making player 1 the winner after a single hop.
	w := build(t, scenario.CardOptions{Players: 3, HandSize: 1, Ranks: 9, Seed: 3})
	hands := [][]int{{0}, {0, 0, 0, 5, 6}, {7, 8}}
	if err := w.Dealer.Deal(w.Refs, hands); err != nil {
		t.Fatal(err)
	}
	// The second deal replaces hands; wait for delivery.
	time.Sleep(50 * time.Millisecond)
	res, err := w.Dealer.Run(w.Refs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Draw || res.Winner != "player-1" || res.Rank != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCardConservationDuringPlay(t *testing.T) {
	w := build(t, scenario.CardOptions{Players: 5, HandSize: 4, Ranks: 12, Seed: 4})
	deadline := time.Now().Add(5 * time.Second)
	for w.CardsHeld() != w.TotalCards() {
		if time.Now().After(deadline) {
			t.Fatal("deal incomplete")
		}
		time.Sleep(time.Millisecond)
	}
	total := w.TotalCards()
	res, err := w.Dealer.Run(w.Refs[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	// After the game stops (winner or draw), all cards are in hands
	// (the turn token carries at most one card, delivered before any
	// announcement reaches the dealer on a FIFO-per-pair network; allow
	// settling).
	deadline = time.Now().Add(5 * time.Second)
	for w.CardsHeld() != total {
		if time.Now().After(deadline) {
			t.Fatalf("cards not conserved: %d of %d (result %+v)", w.CardsHeld(), total, res)
		}
		time.Sleep(time.Millisecond)
	}
}
