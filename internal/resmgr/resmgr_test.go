package resmgr_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/resmgr"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/wire"
)

func world(t *testing.T) (*netsim.Network, *core.Runtime) {
	t.Helper()
	net := netsim.New(netsim.WithSeed(1))
	t.Cleanup(net.Close)
	reg := core.NewRegistry()
	reg.Register("worker", func() core.Behavior {
		return core.BehaviorFunc(func(d *core.Dapplet) error {
			d.Inbox("work")
			return nil
		})
	})
	rt := core.NewRuntime(net, reg)
	rt.SetTransportConfig(transport.Config{RTO: 20 * time.Millisecond})
	t.Cleanup(rt.StopAll)
	return net, rt
}

func launchClient(t *testing.T, rt *core.Runtime, host, name string, mgr *resmgr.Manager) (*core.Dapplet, *resmgr.Client) {
	t.Helper()
	if err := rt.Install(host, "worker"); err != nil {
		t.Fatal(err)
	}
	d, err := rt.Launch(host, "worker", name)
	if err != nil {
		t.Fatal(err)
	}
	return d, resmgr.NewClient(d, mgr.Ref())
}

func TestPublishLookup(t *testing.T) {
	_, rt := world(t)
	mgr, err := resmgr.Install(rt, "machine1")
	if err != nil {
		t.Fatal(err)
	}
	d, cli := launchClient(t, rt, "machine1", "w1", mgr)
	svcInbox := d.Inbox("work").Ref()
	if err := cli.Publish(context.Background(), "printing", svcInbox); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Lookup(context.Background(), "printing")
	if err != nil {
		t.Fatal(err)
	}
	if got.Inbox != svcInbox || got.Owner != "w1" {
		t.Fatalf("lookup = %+v", got)
	}
	// Lookup from a different dapplet (even on another machine).
	_, cli2 := launchClient(t, rt, "machine1", "w2", mgr)
	if _, err := cli2.Lookup(context.Background(), "printing"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli2.Lookup(context.Background(), "nonexistent"); err == nil {
		t.Fatal("missing service found")
	}
	list, err := cli2.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "printing" {
		t.Fatalf("list = %+v", list)
	}
}

func TestHeartbeats(t *testing.T) {
	_, rt := world(t)
	mgr, err := resmgr.Install(rt, "m")
	if err != nil {
		t.Fatal(err)
	}
	_, c1 := launchClient(t, rt, "m", "alpha", mgr)
	_, c2 := launchClient(t, rt, "m", "beta", mgr)
	if err := c1.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	alive, err := c1.Alive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(alive) != 2 {
		t.Fatalf("alive = %v", alive)
	}
}

func TestRemoteLaunch(t *testing.T) {
	net, rt := world(t)
	mgr, err := resmgr.Install(rt, "far-machine")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Install("far-machine", "worker"); err != nil {
		t.Fatal(err)
	}
	// A client on a different machine asks the far manager to activate a
	// worker there.
	ep, err := net.Host("near").BindAny()
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDapplet("requester", "t", transport.NewSimConn(ep),
		core.WithTransportConfig(transport.Config{RTO: 20 * time.Millisecond}))
	t.Cleanup(d.Stop)
	cli := resmgr.NewClient(d, mgr.Ref())
	addr, err := cli.Launch(context.Background(), "worker", "remote-worker")
	if err != nil {
		t.Fatal(err)
	}
	if addr.Dapplet.Host != "far-machine" {
		t.Fatalf("launched on %v", addr.Dapplet)
	}
	if _, ok := rt.Dapplet("remote-worker"); !ok {
		t.Fatal("runtime does not know the launched dapplet")
	}
	// The launched dapplet is reachable.
	if err := d.SendDirect(wire.InboxRef{Dapplet: addr.Dapplet, Inbox: "work"}, "", &wire.Text{S: "job"}); err != nil {
		t.Fatal(err)
	}
	rw, _ := rt.Dapplet("remote-worker")
	if _, err := rw.Inbox("work").ReceiveContext(waitCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchUninstalledTypeFails(t *testing.T) {
	net, rt := world(t)
	mgr, err := resmgr.Install(rt, "m")
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := net.Host("x").BindAny()
	d := core.NewDapplet("req", "t", transport.NewSimConn(ep),
		core.WithTransportConfig(transport.Config{RTO: 20 * time.Millisecond}))
	t.Cleanup(d.Stop)
	cli := resmgr.NewClient(d, mgr.Ref())
	_, err = cli.Launch(context.Background(), "no-such-type", "z")
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestManagersPerMachineAreIndependent(t *testing.T) {
	_, rt := world(t)
	m1, err := resmgr.Install(rt, "m1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := resmgr.Install(rt, "m2")
	if err != nil {
		t.Fatal(err)
	}
	d, c1 := launchClient(t, rt, "m1", "w1", m1)
	if err := c1.Publish(context.Background(), "svc", d.Inbox("work").Ref()); err != nil {
		t.Fatal(err)
	}
	// m2 does not see m1's registrations.
	c2 := resmgr.NewClient(d, m2.Ref())
	if _, err := c2.Lookup(context.Background(), "svc"); err == nil {
		t.Fatal("service leaked across machines")
	}
}

// waitCtx returns a context that expires after d, cleaned up with the test.
func waitCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
