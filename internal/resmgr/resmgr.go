// Package resmgr implements the paper's complementary service-provision
// model (§4): "we can have a resource manager process executing on each
// machine that provides a rich collection of services to dapplets
// executing on that machine." The paper focuses on in-dapplet service
// objects; this package builds the per-machine alternative as an
// extension.
//
// A Manager is a dapplet running on every host. It offers, over RPC:
//
//   - a local service registry: dapplets on the machine publish named
//     services (inbox refs) and peers look them up;
//   - liveness: dapplets ping the manager, which reports which locals are
//     alive;
//   - remote launch: a manager can be asked to launch an installed dapplet
//     type on its machine (the paper's "programs ... are installed on the
//     appropriate machines" plus remote activation).
package resmgr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// ManagerType is the behaviour type name for resource managers.
const ManagerType = "resmgr"

// ObjectName is the RPC object every manager serves.
const ObjectName = "resmgr"

// ErrNoService is returned when a lookup misses.
var ErrNoService = errors.New("resmgr: no such service")

// Service is one published local service.
type Service struct {
	Name  string        `json:"n"`
	Owner string        `json:"o"` // publishing dapplet's name
	Inbox wire.InboxRef `json:"i"`
}

// publishArgs registers a service.
type publishArgs struct {
	Service Service `json:"s"`
}

// lookupArgs finds a service by name.
type lookupArgs struct {
	Name string `json:"n"`
}

// pingArgs records a dapplet heartbeat.
type pingArgs struct {
	Dapplet string `json:"d"`
}

// launchArgs asks the manager to start an installed dapplet type.
type launchArgs struct {
	Type string `json:"t"`
	Name string `json:"n"`
}

// launchReply reports the new dapplet's address.
type launchReply struct {
	Addr wire.InboxRef `json:"a"` // dapplet addr with empty inbox
}

// Manager is the per-machine resource manager.
type Manager struct {
	rt   *core.Runtime
	host string

	mu       sync.Mutex
	services map[string]Service
	lastPing map[string]time.Time
	d        *core.Dapplet
}

// Install registers the resmgr behaviour type on a runtime's registry and
// installs it on the host, then launches the manager dapplet there. One
// manager per host.
func Install(rt *core.Runtime, host string) (*Manager, error) {
	m := &Manager{
		rt:       rt,
		host:     host,
		services: make(map[string]Service),
		lastPing: make(map[string]time.Time),
	}
	rt.Registry().Register(ManagerType, func() core.Behavior { return m })
	if err := rt.Install(host, ManagerType); err != nil {
		return nil, err
	}
	if _, err := rt.Launch(host, ManagerType, "resmgr@"+host); err != nil {
		return nil, err
	}
	return m, nil
}

// Start implements core.Behavior: it serves the manager's RPC object.
func (m *Manager) Start(d *core.Dapplet) error {
	m.d = d
	rpc.Serve(d, ObjectName, rpc.Object{
		"publish": m.rpcPublish,
		"lookup":  m.rpcLookup,
		"list":    m.rpcList,
		"ping":    m.rpcPing,
		"alive":   m.rpcAlive,
		"launch":  m.rpcLaunch,
	})
	return nil
}

// Ref returns the manager's RPC reference.
func (m *Manager) Ref() rpc.Ref {
	return rpc.Ref{Inbox: wire.InboxRef{Dapplet: m.d.Addr(), Inbox: "@obj:" + ObjectName}}
}

// Host returns the managed machine's name.
func (m *Manager) Host() string { return m.host }

func (m *Manager) rpcPublish(raw json.RawMessage) (any, error) {
	args, err := rpc.Args[publishArgs](raw)
	if err != nil {
		return nil, err
	}
	if args.Service.Name == "" {
		return nil, errors.New("resmgr: empty service name")
	}
	m.mu.Lock()
	m.services[args.Service.Name] = args.Service
	m.mu.Unlock()
	return true, nil
}

func (m *Manager) rpcLookup(raw json.RawMessage) (any, error) {
	args, err := rpc.Args[lookupArgs](raw)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	s, ok := m.services[args.Name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q on host %q", ErrNoService, args.Name, m.host)
	}
	return s, nil
}

func (m *Manager) rpcList(json.RawMessage) (any, error) {
	m.mu.Lock()
	out := make([]Service, 0, len(m.services))
	for _, s := range m.services {
		out = append(out, s)
	}
	m.mu.Unlock()
	return out, nil
}

func (m *Manager) rpcPing(raw json.RawMessage) (any, error) {
	args, err := rpc.Args[pingArgs](raw)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.lastPing[args.Dapplet] = time.Now()
	m.mu.Unlock()
	return true, nil
}

func (m *Manager) rpcAlive(json.RawMessage) (any, error) {
	m.mu.Lock()
	out := make([]string, 0, len(m.lastPing))
	for d, at := range m.lastPing {
		if time.Since(at) < 5*time.Second {
			out = append(out, d)
		}
	}
	m.mu.Unlock()
	return out, nil
}

func (m *Manager) rpcLaunch(raw json.RawMessage) (any, error) {
	args, err := rpc.Args[launchArgs](raw)
	if err != nil {
		return nil, err
	}
	d, err := m.rt.Launch(m.host, args.Type, args.Name)
	if err != nil {
		return nil, err
	}
	return launchReply{Addr: wire.InboxRef{Dapplet: d.Addr()}}, nil
}

// Client gives dapplets typed access to a resource manager.
type Client struct {
	cli *rpc.Client
	ref rpc.Ref
	d   *core.Dapplet
}

// NewClient attaches a resmgr client to a dapplet, talking to the given
// manager.
func NewClient(d *core.Dapplet, ref rpc.Ref) *Client {
	return &Client{cli: rpc.NewClient(d), ref: ref, d: d}
}

// Publish registers a named service (an inbox on this dapplet).
func (c *Client) Publish(ctx context.Context, name string, inbox wire.InboxRef) error {
	return c.cli.Call(ctx, c.ref, "publish", publishArgs{
		Service: Service{Name: name, Owner: c.d.Name(), Inbox: inbox},
	}, nil)
}

// Lookup finds a service by name.
func (c *Client) Lookup(ctx context.Context, name string) (Service, error) {
	var s Service
	err := c.cli.Call(ctx, c.ref, "lookup", lookupArgs{Name: name}, &s)
	return s, err
}

// List returns every published service on the machine.
func (c *Client) List(ctx context.Context) ([]Service, error) {
	var out []Service
	err := c.cli.Call(ctx, c.ref, "list", nil, &out)
	return out, err
}

// Ping records a heartbeat for this dapplet.
func (c *Client) Ping(ctx context.Context) error {
	return c.cli.Call(ctx, c.ref, "ping", pingArgs{Dapplet: c.d.Name()}, nil)
}

// Alive returns the dapplets that have pinged recently.
func (c *Client) Alive(ctx context.Context) ([]string, error) {
	var out []string
	err := c.cli.Call(ctx, c.ref, "alive", nil, &out)
	return out, err
}

// Launch asks the manager to start an installed dapplet type on its
// machine, returning the new dapplet's address.
func (c *Client) Launch(ctx context.Context, typ, name string) (wire.InboxRef, error) {
	var rep launchReply
	err := c.cli.Call(ctx, c.ref, "launch", launchArgs{Type: typ, Name: name}, &rep)
	return rep.Addr, err
}
