// Package rpc implements the paper's global pointers and remote procedure
// calls over inboxes (§3.2 "Communication Layer Features"):
//
//	"Associate an inbox b with an object p. Messages in b are directions
//	to invoke appropriate methods on p. Associate a thread with b and p:
//	the thread receives a message from b and then invokes the method
//	specified in the message on p. Thus the address of the inbox serves
//	as a global pointer to an object associated with the inbox, and
//	messages serve the role of asynchronous RPCs. Synchronous RPCs are
//	implemented as pairwise asynchronous RPCs."
//
// The request/reply pairing, correlation ids and deadlines are the svc
// framework's (internal/svc); this package adds only the object/method
// model and the JSON argument convention on top of it.
package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/svc"
	"repro/internal/wire"
)

// Errors returned by the RPC layer.
var (
	// ErrClosed is returned when the client's dapplet has stopped.
	ErrClosed = errors.New("rpc: closed")
	// ErrTimeout is returned by the deprecated CallTimeout on expiry;
	// context-first calls return context.DeadlineExceeded instead.
	ErrTimeout = errors.New("rpc: call timeout")
	// ErrNoMethod is returned (remotely) for unknown method names.
	ErrNoMethod = errors.New("rpc: no such method")
)

// Service error codes piggybacked through the svc reply: the remote end
// classifies its failure as a typed value, not a string the client would
// have to parse.
const (
	// codeNoMethod reports an unknown method name.
	codeNoMethod = svc.CodeUser + 0
	// codeRemote wraps an error raised by the remote method itself.
	codeRemote = svc.CodeUser + 1
)

// RemoteError carries an error raised by the remote object's method.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg) }

// Ref is a global pointer: the global address of the inbox associated
// with an object.
type Ref struct {
	Inbox wire.InboxRef `json:"in"`
}

// IsZero reports whether the reference is unset.
func (r Ref) IsZero() bool { return r.Inbox.IsZero() }

// callMsg is an invocation direction placed in an object's inbox. Sent
// bare it is an asynchronous RPC (no reply); inside an svc frame the
// framework's correlation id and reply inbox make it synchronous.
type callMsg struct {
	Method string          `json:"m"`
	Args   json.RawMessage `json:"a,omitempty"`
}

func (*callMsg) Kind() string { return "rpc.call" }

// AppendBinary implements wire.BinaryMessage (the hot-path codec).
func (c *callMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendString(dst, c.Method)
	dst = wire.AppendBytes(dst, c.Args)
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (c *callMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	c.Method = r.String()
	c.Args = r.Bytes()
	return r.Done()
}

// replyMsg carries a successful call's result; errors travel as typed
// svc error codes instead.
type replyMsg struct {
	Result json.RawMessage `json:"r,omitempty"`
}

func (*replyMsg) Kind() string { return "rpc.reply" }

// AppendBinary implements wire.BinaryMessage.
func (m *replyMsg) AppendBinary(dst []byte) ([]byte, error) {
	return wire.AppendBytes(dst, m.Result), nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (m *replyMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	m.Result = r.Bytes()
	return r.Done()
}

func init() {
	wire.Register(&callMsg{})
	wire.Register(&replyMsg{})
}

// Method is one invocable operation on a served object. Args arrive as
// JSON; the result must be JSON-serializable.
type Method func(args json.RawMessage) (any, error)

// Object is a set of named methods.
type Object map[string]Method

// Serve associates an object with an inbox named "@obj:<name>" on the
// dapplet and a dispatch thread that invokes the directed methods,
// returning the object's global pointer. The inbox is an svc-served
// inbox: correlated invocations are answered, bare ones are asynchronous.
func Serve(d *core.Dapplet, name string, obj Object) Ref {
	inboxName := "@obj:" + name
	srv := svc.Serve(d, inboxName, svc.Handlers{
		"rpc.call": func(c *svc.Ctx, req wire.Msg) (wire.Msg, error) {
			call := req.(*callMsg)
			m, found := obj[call.Method]
			if !found {
				return nil, &svc.Error{Code: codeNoMethod, Msg: call.Method}
			}
			result, err := m(call.Args)
			if err != nil {
				return nil, &svc.Error{Code: codeRemote, Msg: err.Error()}
			}
			if result == nil {
				return &replyMsg{}, nil
			}
			data, jerr := json.Marshal(result)
			if jerr != nil {
				return nil, &svc.Error{Code: codeRemote, Msg: fmt.Sprintf("marshal result: %v", jerr)}
			}
			return &replyMsg{Result: data}, nil
		},
	})
	return Ref{Inbox: srv.Ref()}
}

// Client issues calls from a dapplet to remote objects. Each client owns
// its own svc caller (private reply inbox and correlation ids), so any
// number of clients per dapplet coexist.
type Client struct {
	d      *core.Dapplet
	caller *svc.Caller
}

// NewClient attaches an RPC client to the dapplet.
func NewClient(d *core.Dapplet) *Client {
	return &Client{d: d, caller: svc.NewCaller(d)}
}

// Cast is an asynchronous RPC: a message directing the remote object to
// invoke a method, with no reply.
func (c *Client) Cast(ref Ref, method string, args any) error {
	data, err := marshalArgs(args)
	if err != nil {
		return err
	}
	return c.caller.Cast(ref.Inbox, "", &callMsg{Method: method, Args: data})
}

// Call is a synchronous RPC implemented as pairwise asynchronous RPCs: it
// sends the invocation and suspends until the reply message arrives,
// decoding the result into out (which may be nil). The context bounds the
// wait: cancellation or deadline expiry returns ctx.Err().
func (c *Client) Call(ctx context.Context, ref Ref, method string, args any, out any) error {
	data, err := marshalArgs(args)
	if err != nil {
		return err
	}
	var rep replyMsg
	if err := c.caller.Call(ctx, ref.Inbox, &callMsg{Method: method, Args: data}, &rep); err != nil {
		var se *svc.Error
		if errors.As(err, &se) {
			switch se.Code {
			case codeNoMethod:
				return fmt.Errorf("%w: %q", ErrNoMethod, method)
			case codeRemote:
				return &RemoteError{Method: method, Msg: se.Msg}
			}
		}
		if errors.Is(err, core.ErrStopped) {
			return ErrClosed
		}
		return err
	}
	if out != nil && rep.Result != nil {
		if err := json.Unmarshal(rep.Result, out); err != nil {
			return fmt.Errorf("rpc: decode result of %s: %w", method, err)
		}
	}
	return nil
}

// CallTimeout is Call with a deadline, returning ErrTimeout on expiry.
//
// Deprecated: use Call with a deadline context, which returns
// context.DeadlineExceeded and composes with cancellation.
func (c *Client) CallTimeout(ref Ref, method string, args any, out any, d time.Duration) error {
	ctx := context.Background() //wwlint:allow ctxcheck deprecated shim with no caller context; bounded by d when positive
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	err := c.Call(ctx, ref, method, args, out)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %s", ErrTimeout, method)
	}
	return err
}

func marshalArgs(args any) (json.RawMessage, error) {
	if args == nil {
		return nil, nil
	}
	data, err := json.Marshal(args)
	if err != nil {
		return nil, fmt.Errorf("rpc: marshal args: %w", err)
	}
	return data, nil
}

// Args decodes JSON arguments into a typed value inside a Method body.
func Args[T any](raw json.RawMessage) (T, error) {
	var v T
	if len(raw) == 0 {
		return v, nil
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("rpc: decode args: %w", err)
	}
	return v, nil
}
