// Package rpc implements the paper's global pointers and remote procedure
// calls over inboxes (§3.2 "Communication Layer Features"):
//
//	"Associate an inbox b with an object p. Messages in b are directions
//	to invoke appropriate methods on p. Associate a thread with b and p:
//	the thread receives a message from b and then invokes the method
//	specified in the message on p. Thus the address of the inbox serves
//	as a global pointer to an object associated with the inbox, and
//	messages serve the role of asynchronous RPCs. Synchronous RPCs are
//	implemented as pairwise asynchronous RPCs."
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Errors returned by the RPC layer.
var (
	// ErrClosed is returned when the client's dapplet has stopped.
	ErrClosed = errors.New("rpc: closed")
	// ErrTimeout is returned by CallTimeout on expiry.
	ErrTimeout = errors.New("rpc: call timeout")
	// ErrNoMethod is returned (remotely) for unknown method names.
	ErrNoMethod = errors.New("rpc: no such method")
)

// RemoteError carries an error raised by the remote object's method.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg) }

// Ref is a global pointer: the global address of the inbox associated
// with an object.
type Ref struct {
	Inbox wire.InboxRef `json:"in"`
}

// IsZero reports whether the reference is unset.
func (r Ref) IsZero() bool { return r.Inbox.IsZero() }

// callMsg is an invocation direction placed in an object's inbox. A zero
// ReplyTo makes it an asynchronous RPC (a plain message); otherwise the
// server replies, and the pair of asynchronous messages forms one
// synchronous RPC.
type callMsg struct {
	ID      uint64          `json:"id"`
	Method  string          `json:"m"`
	Args    json.RawMessage `json:"a,omitempty"`
	ReplyTo wire.InboxRef   `json:"re,omitempty"`
}

func (*callMsg) Kind() string { return "rpc.call" }

// AppendBinary implements wire.BinaryMessage (the hot-path codec).
func (c *callMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendUvarint(dst, c.ID)
	dst = wire.AppendString(dst, c.Method)
	dst = wire.AppendBytes(dst, c.Args)
	dst = wire.AppendInboxRef(dst, c.ReplyTo)
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (c *callMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	c.ID = r.Uvarint()
	c.Method = r.String()
	c.Args = r.Bytes()
	c.ReplyTo = r.InboxRef()
	return r.Done()
}

// replyMsg answers a synchronous call.
type replyMsg struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"r,omitempty"`
	Err    string          `json:"e,omitempty"`
	NoMeth bool            `json:"nm,omitempty"`
}

func (*replyMsg) Kind() string { return "rpc.reply" }

// AppendBinary implements wire.BinaryMessage.
func (m *replyMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wire.AppendUvarint(dst, m.ID)
	dst = wire.AppendBytes(dst, m.Result)
	dst = wire.AppendString(dst, m.Err)
	dst = wire.AppendBool(dst, m.NoMeth)
	return dst, nil
}

// UnmarshalBinary implements wire.BinaryMessage.
func (m *replyMsg) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	m.ID = r.Uvarint()
	m.Result = r.Bytes()
	m.Err = r.String()
	m.NoMeth = r.Bool()
	return r.Done()
}

func init() {
	wire.Register(&callMsg{})
	wire.Register(&replyMsg{})
}

// Method is one invocable operation on a served object. Args arrive as
// JSON; the result must be JSON-serializable.
type Method func(args json.RawMessage) (any, error)

// Object is a set of named methods.
type Object map[string]Method

// Serve associates an object with an inbox named "@obj:<name>" on the
// dapplet and a thread that invokes the directed methods, returning the
// object's global pointer.
func Serve(d *core.Dapplet, name string, obj Object) Ref {
	inboxName := "@obj:" + name
	d.Handle(inboxName, func(env *wire.Envelope) {
		call, ok := env.Body.(*callMsg)
		if !ok {
			return
		}
		m, found := obj[call.Method]
		var (
			result any
			err    error
		)
		if found {
			result, err = m(call.Args)
		}
		if call.ReplyTo.IsZero() {
			return // asynchronous invocation: no reply expected
		}
		rep := &replyMsg{ID: call.ID, NoMeth: !found}
		if err != nil {
			rep.Err = err.Error()
		} else if found && result != nil {
			data, jerr := json.Marshal(result)
			if jerr != nil {
				rep.Err = fmt.Sprintf("marshal result: %v", jerr)
			} else {
				rep.Result = data
			}
		}
		_ = d.SendDirect(call.ReplyTo, env.Session, rep)
	})
	return Ref{Inbox: wire.InboxRef{Dapplet: d.Addr(), Inbox: inboxName}}
}

// Client issues calls from a dapplet to remote objects.
type Client struct {
	d *core.Dapplet

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan *replyMsg
}

// clients maps each dapplet to its single RPC client. A dapplet has one
// "@rpc-reply" inbox; two clients each consuming it would race for every
// reply, and a reply drained by the wrong client is silently dropped
// (deadlocking the real caller). NewClient therefore returns one shared
// client per dapplet.
var (
	clientsMu sync.Mutex
	clients   = make(map[*core.Dapplet]*Client)
)

// NewClient attaches an RPC client to the dapplet, or returns the
// dapplet's existing client: all RPC replies to a dapplet arrive on the
// one "@rpc-reply" inbox, so the client consuming it must be shared.
func NewClient(d *core.Dapplet) *Client {
	clientsMu.Lock()
	defer clientsMu.Unlock()
	if c, ok := clients[d]; ok {
		return c
	}
	c := &Client{d: d, waiting: make(map[uint64]chan *replyMsg)}
	d.Handle("@rpc-reply", func(env *wire.Envelope) {
		rep, ok := env.Body.(*replyMsg)
		if !ok {
			return
		}
		c.mu.Lock()
		ch := c.waiting[rep.ID]
		delete(c.waiting, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	})
	clients[d] = c
	go func() {
		<-d.Stopped()
		clientsMu.Lock()
		delete(clients, d)
		clientsMu.Unlock()
	}()
	return c
}

// Cast is an asynchronous RPC: a message directing the remote object to
// invoke a method, with no reply.
func (c *Client) Cast(ref Ref, method string, args any) error {
	data, err := marshalArgs(args)
	if err != nil {
		return err
	}
	return c.d.SendDirect(ref.Inbox, "", &callMsg{Method: method, Args: data})
}

// Call is a synchronous RPC implemented as pairwise asynchronous RPCs: it
// sends the invocation and suspends until the reply message arrives,
// decoding the result into out (which may be nil).
func (c *Client) Call(ref Ref, method string, args any, out any) error {
	return c.call(ref, method, args, out, 0)
}

// CallTimeout is Call with a deadline.
func (c *Client) CallTimeout(ref Ref, method string, args any, out any, d time.Duration) error {
	return c.call(ref, method, args, out, d)
}

func (c *Client) call(ref Ref, method string, args any, out any, timeout time.Duration) error {
	data, err := marshalArgs(args)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan *replyMsg, 1)
	c.waiting[id] = ch
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
	}

	call := &callMsg{
		ID:      id,
		Method:  method,
		Args:    data,
		ReplyTo: wire.InboxRef{Dapplet: c.d.Addr(), Inbox: "@rpc-reply"},
	}
	if err := c.d.SendDirect(ref.Inbox, "", call); err != nil {
		cleanup()
		return err
	}

	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	select {
	case rep := <-ch:
		if rep.NoMeth {
			return fmt.Errorf("%w: %q", ErrNoMethod, method)
		}
		if rep.Err != "" {
			return &RemoteError{Method: method, Msg: rep.Err}
		}
		if out != nil && rep.Result != nil {
			if err := json.Unmarshal(rep.Result, out); err != nil {
				return fmt.Errorf("rpc: decode result of %s: %w", method, err)
			}
		}
		return nil
	case <-timerC:
		cleanup()
		return fmt.Errorf("%w: %s", ErrTimeout, method)
	case <-c.d.Stopped():
		cleanup()
		return ErrClosed
	}
}

func marshalArgs(args any) (json.RawMessage, error) {
	if args == nil {
		return nil, nil
	}
	data, err := json.Marshal(args)
	if err != nil {
		return nil, fmt.Errorf("rpc: marshal args: %w", err)
	}
	return data, nil
}

// Args decodes JSON arguments into a typed value inside a Method body.
func Args[T any](raw json.RawMessage) (T, error) {
	var v T
	if len(raw) == 0 {
		return v, nil
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("rpc: decode args: %w", err)
	}
	return v, nil
}
