package rpc_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/transport"
)

type rworld struct {
	t   *testing.T
	net *netsim.Network
}

func newRWorld(t *testing.T, opts ...netsim.Option) *rworld {
	t.Helper()
	n := netsim.New(opts...)
	t.Cleanup(n.Close)
	return &rworld{t: t, net: n}
}

func (w *rworld) dapplet(host, name string) *core.Dapplet {
	w.t.Helper()
	ep, err := w.net.Host(host).BindAny()
	if err != nil {
		w.t.Fatal(err)
	}
	d := core.NewDapplet(name, "t", transport.NewSimConn(ep),
		core.WithTransportConfig(transport.Config{RTO: 20 * time.Millisecond}))
	w.t.Cleanup(d.Stop)
	return d
}

// counter is a tiny served object.
func counterObject() (rpc.Object, *sync.Mutex, *int) {
	var mu sync.Mutex
	n := 0
	obj := rpc.Object{
		"add": func(raw json.RawMessage) (any, error) {
			delta, err := rpc.Args[int](raw)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			defer mu.Unlock()
			n += delta
			return n, nil
		},
		"get": func(raw json.RawMessage) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			return n, nil
		},
		"fail": func(raw json.RawMessage) (any, error) {
			return nil, errors.New("intentional failure")
		},
	}
	return obj, &mu, &n
}

func TestSyncCall(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("caltech", "server")
	clientD := w.dapplet("rice", "client")
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	cli := rpc.NewClient(clientD)

	var result int
	if err := cli.Call(context.Background(), ref, "add", 5, &result); err != nil {
		t.Fatal(err)
	}
	if result != 5 {
		t.Fatalf("result = %d", result)
	}
	if err := cli.Call(context.Background(), ref, "add", 3, &result); err != nil {
		t.Fatal(err)
	}
	if result != 8 {
		t.Fatalf("result = %d", result)
	}
	// Nil out is allowed.
	if err := cli.Call(context.Background(), ref, "add", 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCast(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	clientD := w.dapplet("h2", "client")
	obj, mu, n := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	cli := rpc.NewClient(clientD)

	for i := 0; i < 10; i++ {
		if err := cli.Cast(ref, "add", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		v := *n
		mu.Unlock()
		if v == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("casts not applied: n=%d", v)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteError(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	cli := rpc.NewClient(w.dapplet("h2", "client"))
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	err := cli.Call(context.Background(), ref, "fail", nil, nil)
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if remote.Msg != "intentional failure" || remote.Method != "fail" {
		t.Fatalf("remote = %+v", remote)
	}
}

func TestNoSuchMethod(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	cli := rpc.NewClient(w.dapplet("h2", "client"))
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	if err := cli.Call(context.Background(), ref, "bogus", nil, nil); !errors.Is(err, rpc.ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod", err)
	}
}

func TestCallTimeout(t *testing.T) {
	w := newRWorld(t)
	w.net.Partition([]string{"h1"}, []string{"h2"})
	server := w.dapplet("h1", "server")
	cli := rpc.NewClient(w.dapplet("h2", "client"))
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	err := cli.CallTimeout(ref, "get", nil, nil, 100*time.Millisecond)
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestGlobalPointerIsTransferable(t *testing.T) {
	// A ref can be passed to another dapplet and used there: it is a
	// global pointer, not a local handle.
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)

	data, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	var ref2 rpc.Ref
	if err := json.Unmarshal(data, &ref2); err != nil {
		t.Fatal(err)
	}
	cli := rpc.NewClient(w.dapplet("h3", "other-client"))
	var out int
	if err := cli.Call(context.Background(), ref2, "add", 7, &out); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("out = %d", out)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	clientD := w.dapplet("h2", "client")
	echo := rpc.Object{
		"echo": func(raw json.RawMessage) (any, error) {
			v, err := rpc.Args[int](raw)
			return v, err
		},
	}
	ref := rpc.Serve(server, "echo", echo)
	cli := rpc.NewClient(clientD)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out int
			if err := cli.Call(context.Background(), ref, "echo", i, &out); err != nil {
				t.Error(err)
				return
			}
			if out != i {
				t.Errorf("echo(%d) = %d", i, out)
			}
		}(i)
	}
	wg.Wait()
}

func TestClientClosedDuringCall(t *testing.T) {
	w := newRWorld(t)
	w.net.Partition([]string{"h1"}, []string{"h2"})
	server := w.dapplet("h1", "server")
	clientD := w.dapplet("h2", "client")
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	cli := rpc.NewClient(clientD)
	done := make(chan error, 1)
	go func() { done <- cli.Call(context.Background(), ref, "get", nil, nil) }()
	time.Sleep(50 * time.Millisecond)
	clientD.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, rpc.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never unblocked")
	}
}

func TestServedObjectsAreIndependent(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	cli := rpc.NewClient(w.dapplet("h2", "client"))
	objA, _, _ := counterObject()
	objB, _, _ := counterObject()
	refA := rpc.Serve(server, "a", objA)
	refB := rpc.Serve(server, "b", objB)
	var a, b int
	if err := cli.Call(context.Background(), refA, "add", 10, &a); err != nil {
		t.Fatal(err)
	}
	if err := cli.Call(context.Background(), refB, "get", nil, &b); err != nil {
		t.Fatal(err)
	}
	if a != 10 || b != 0 {
		t.Fatalf("a=%d b=%d; objects share state", a, b)
	}
}

// TestIndependentClientsPerDapplet pins the svc-era contract: every
// rpc.Client owns a private reply inbox and correlation-id space, so any
// number of clients on one dapplet interleave calls without stealing
// each other's replies (the old shared "@rpc-reply" inbox, and the
// shared-client workaround it forced, are gone).
func TestIndependentClientsPerDapplet(t *testing.T) {
	w := newRWorld(t, netsim.WithSeed(1))
	server := w.dapplet("s", "server")
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)

	d := w.dapplet("c", "client")
	c1 := rpc.NewClient(d)
	c2 := rpc.NewClient(d)
	if c1 == c2 {
		t.Fatal("NewClient returned the same client twice")
	}
	// Interleaved calls through both clients must all complete.
	for i := 0; i < 20; i++ {
		cli := c1
		if i%2 == 1 {
			cli = c2
		}
		var n int
		if err := cli.Call(context.Background(), ref, "add", 1, &n); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestCallExpiredContext pins the context contract: a Call whose context
// has already expired fails fast with context.DeadlineExceeded — never a
// bespoke rpc timeout error.
func TestCallExpiredContext(t *testing.T) {
	w := newRWorld(t)
	server := w.dapplet("h1", "server")
	cli := rpc.NewClient(w.dapplet("h2", "client"))
	obj, _, _ := counterObject()
	ref := rpc.Serve(server, "counter", obj)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if err := cli.Call(ctx, ref, "get", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
