package netsim

import (
	"container/heap"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// shard owns a partition of the network's hosts and every piece of
// routing state a delivery into those hosts needs: the hosts themselves,
// link parameters, the partition view, reorder slots, a seeded random
// stream and a timer queue for time-scaled deliveries. Two sends whose
// destination hosts live on different shards share no locks at all; the
// only state they both touch is the atomic stats counters.
type shard struct {
	mu      sync.Mutex
	version uint64 // bumped on any change that invalidates cached routes
	rng     *rand.Rand
	hosts   map[string]*Host
	links   map[linkKey]LinkParams
	groups  map[string]int        // partition group per host; empty = fully connected
	down    map[string]bool       // crashed hosts (copy installed on every shard)
	pending map[linkKey]*Datagram // reorder slots for links delivering into this shard

	timerQ  timerHeap
	timerOn bool          // drain goroutine started
	wake    chan struct{} // nudges the drain goroutine after a push

	buf []byte // chunk allocator for small payload copies

	ctr shardCounters
}

// payload chunking: small datagram payloads are carved out of a shared
// chunk instead of one heap allocation each, cutting allocator and GC
// pressure on the send path by orders of magnitude. A chunk is released
// to the GC once every payload carved from it is unreachable.
const (
	payloadChunkSize = 16 << 10
	maxChunkedCopy   = 1 << 10
)

// clonePayload copies p into freshly owned memory. Caller must hold s.mu.
func (s *shard) clonePayload(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	if len(p) > maxChunkedCopy {
		out := make([]byte, len(p))
		copy(out, p)
		return out
	}
	if len(s.buf) < len(p) {
		s.buf = make([]byte, payloadChunkSize)
	}
	out := s.buf[:len(p):len(p)]
	s.buf = s.buf[len(p):]
	copy(out, p)
	return out
}

// shardCounters keeps statistics shard-local so concurrent senders on
// different shards never touch a shared cache line. The route-stage
// counters are plain fields incremented under the shard lock; delivered
// and lostQueue are atomic because final delivery runs lock-free (from
// the sender after it released the shard lock, or from the timer
// goroutine).
type shardCounters struct {
	sent       uint64 // guarded by shard.mu
	lostLink   uint64 // guarded by shard.mu
	lostCut    uint64 // guarded by shard.mu
	lostCrash  uint64 // guarded by shard.mu
	duplicated uint64 // guarded by shard.mu
	reordered  uint64 // guarded by shard.mu
	bytesSent  uint64 // guarded by shard.mu
	wireBytes  uint64 // guarded by shard.mu

	delivered atomic.Uint64
	lostQueue atomic.Uint64
}

// newShard builds shard i with its random stream derived from the base
// seed as seed ^ hash(i), so every shard draws an independent but
// seed-reproducible sequence.
func newShard(seed int64, i int) *shard {
	return &shard{
		rng:     rand.New(rand.NewSource(shardSeed(seed, i))),
		hosts:   make(map[string]*Host),
		links:   make(map[linkKey]LinkParams),
		groups:  make(map[string]int),
		down:    make(map[string]bool),
		pending: make(map[linkKey]*Datagram),
		wake:    make(chan struct{}, 1),
	}
}

// shardSeed derives shard i's seed: baseSeed ^ hash(i). Shard 0 keeps the
// base seed unchanged so WithShards(1) draws exactly the base stream.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	var buf [8]byte
	for b := 0; b < 8; b++ {
		buf[b] = byte(i >> (8 * b))
	}
	return seed ^ int64(hashString(string(buf[:])))
}

// timedDelivery is one datagram waiting in a shard's timer queue.
type timedDelivery struct {
	due time.Time
	dst *Endpoint
	dg  Datagram
}

// timerHeap is a binary min-heap of timed deliveries ordered by due time.
// It replaces the per-datagram time.AfterFunc of the single-lock design:
// one goroutine per shard drains the heap, so a burst of in-flight
// datagrams costs heap pushes, not runtime timers.
type timerHeap []timedDelivery

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timedDelivery)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	td := old[n-1]
	old[n-1] = timedDelivery{}
	*h = old[:n-1]
	return td
}

// scheduleLocked queues a timed delivery and lazily starts the shard's
// drain goroutine. Caller must hold s.mu.
func (s *shard) scheduleLocked(n *Network, due time.Time, dst *Endpoint, dg Datagram) {
	heap.Push(&s.timerQ, timedDelivery{due: due, dst: dst, dg: dg})
	if !s.timerOn {
		s.timerOn = true
		go s.drainTimers(n)
	}
}

// wakeTimer nudges the drain goroutine without blocking; a pending nudge
// is enough, so extra ones are dropped.
func (s *shard) wakeTimer() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// drainTimers delivers timed datagrams as they come due. It sleeps until
// the earliest deadline (or until a push wakes it with an earlier one) and
// exits when the network closes; deliveries still queued at close are
// dropped, matching the cancelled-timer semantics of the old design.
func (s *shard) drainTimers(n *Network) {
	for {
		s.mu.Lock()
		now := time.Now() //wwlint:allow determinism drains real-time-paced deliveries only; seeded replays (timeScale=0) never queue them
		var due []timedDelivery
		wait := time.Duration(-1)
		for len(s.timerQ) > 0 {
			if d := s.timerQ[0].due.Sub(now); d > 0 {
				wait = d
				break
			}
			td := heap.Pop(&s.timerQ).(timedDelivery)
			// An in-flight datagram is discarded at its delivery instant
			// if either endpoint's host crashed after it was scheduled,
			// matching the route-stage check and the Crash contract.
			if len(s.down) > 0 && (s.down[td.dst.host.name] || s.down[td.dg.From.Host]) {
				s.ctr.lostCrash++
				continue
			}
			due = append(due, td)
		}
		s.mu.Unlock()
		for _, td := range due {
			n.deliver(td.dst, td.dg)
		}
		if wait < 0 {
			select {
			case <-s.wake:
			case <-n.done:
				return
			}
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-s.wake:
			t.Stop()
		case <-t.C:
		case <-n.done:
			t.Stop()
			return
		}
	}
}
