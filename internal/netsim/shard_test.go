package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestWithShardsCounts(t *testing.T) {
	if got := New(WithShards(4)).Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if got := New().Shards(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Shards() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(WithShards(-3)).Shards(); got < 1 {
		t.Fatalf("Shards() = %d for negative option, want >= 1", got)
	}
}

// TestConcurrentSendStatsBalance hammers the network from many goroutines
// (run under -race) across lossy, duplicating links and checks that the
// atomic counters balance exactly: every datagram submitted is accounted
// for as delivered, lost to the link, cut by a partition, or dropped at a
// queue, with duplication adding extra delivered copies.
func TestConcurrentSendStatsBalance(t *testing.T) {
	for _, shards := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			n := New(WithSeed(1234), WithShards(shards), WithQueueCap(4096))
			defer n.Close()
			const senders, per = 16, 500
			dsts := make([]*Endpoint, senders)
			srcs := make([]*Endpoint, senders)
			for i := 0; i < senders; i++ {
				var err error
				if srcs[i], err = n.Host(fmt.Sprintf("src%d", i)).Bind(1); err != nil {
					t.Fatal(err)
				}
				if dsts[i], err = n.Host(fmt.Sprintf("dst%d", i)).Bind(1); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < senders; i++ {
				// Sender i talks to destination i+1 (cross-traffic below).
				n.SetLink(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", (i+1)%senders),
					LinkParams{Loss: 0.3, Dup: 0.2})
			}
			var wg sync.WaitGroup
			for i := 0; i < senders; i++ {
				wg.Add(1)
				go func(src *Endpoint, to Addr) {
					defer wg.Done()
					for k := 0; k < per; k++ {
						// Cross-traffic to all destinations exercises
						// cross-shard routing, not just one pair.
						if err := src.Send(to, []byte("balance")); err != nil {
							t.Error(err)
							return
						}
					}
				}(srcs[i], dsts[(i+1)%senders].Addr())
			}
			wg.Wait()
			// timeScale is 0, so every Send has fully resolved by now:
			// nothing is in flight and no reorder slot is held (Reorder=0).
			st := n.Stats()
			if st.Sent != senders*per {
				t.Fatalf("Sent = %d, want %d", st.Sent, senders*per)
			}
			got := st.Delivered + st.LostLink + st.LostCut + st.LostQueue
			want := st.Sent + st.Duplicated
			if got != want {
				t.Fatalf("counters do not balance: Delivered(%d)+LostLink(%d)+LostCut(%d)+LostQueue(%d) = %d, want Sent(%d)+Duplicated(%d) = %d",
					st.Delivered, st.LostLink, st.LostCut, st.LostQueue, got, st.Sent, st.Duplicated, want)
			}
			if st.LostLink == 0 || st.Duplicated == 0 {
				t.Fatalf("faults never fired (LostLink=%d Duplicated=%d); test is vacuous", st.LostLink, st.Duplicated)
			}
		})
	}
}

// runSeededSequence drives one deterministic single-goroutine run over a
// faulty link and returns the exact sequence of delivered payloads.
func runSeededSequence(t *testing.T, seed int64, shards int) []string {
	t.Helper()
	n := New(WithSeed(seed), WithShards(shards), WithQueueCap(4096))
	defer n.Close()
	src, err := n.Host("alpha").Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.Host("beta").Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	n.SetLink("alpha", "beta", LinkParams{Loss: 0.2, Dup: 0.2, Reorder: 0.2})
	for i := 0; i < 400; i++ {
		if err := src.Send(dst.Addr(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var seq []string
	for {
		dg, err := dst.RecvTimeout(50 * time.Millisecond)
		if err != nil {
			break
		}
		seq = append(seq, string(dg.Payload))
	}
	return seq
}

// TestSeededRunsAreIdentical checks the determinism contract: two runs
// with the same seed and WithShards(1) (and, single-threaded, any fixed
// shard count) deliver the identical datagram sequence through loss,
// duplication and reordering.
func TestSeededRunsAreIdentical(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			a := runSeededSequence(t, 77, shards)
			b := runSeededSequence(t, 77, shards)
			if len(a) != len(b) {
				t.Fatalf("runs delivered %d vs %d datagrams", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sequences diverge at %d: %q vs %q", i, a[i], b[i])
				}
			}
			if len(a) == 400 {
				t.Fatal("no datagram was ever dropped; faulty-link determinism untested")
			}
		})
	}
}

// TestSeedsDiffer guards against the degenerate "deterministic because
// the rng is ignored" failure mode: different seeds must produce
// different delivery sequences.
func TestSeedsDiffer(t *testing.T) {
	a := runSeededSequence(t, 1, 1)
	b := runSeededSequence(t, 2, 1)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical sequences")
		}
	}
}

// TestTimedDeliveryHeapOrder checks the per-shard timer heap delivers
// time-scaled datagrams and that closing the network cancels what is
// still queued.
func TestTimedDeliveryHeapOrder(t *testing.T) {
	n := New(WithTimeScale(1.0), WithDefaultDelay(Constant(10*time.Millisecond)), WithShards(2))
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	for i := 0; i < 5; i++ {
		if err := a.Send(b.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		dg, err := b.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("timed delivery %d: %v", i, err)
		}
		if dg.Payload[0] != byte(i) {
			t.Fatalf("timed delivery order: got %d at position %d", dg.Payload[0], i)
		}
	}
	// Queue one more and close before it comes due: it must be cancelled.
	// A long delay keeps this robust on a loaded machine — with the 10ms
	// delay a GC pause could let it deliver before Close.
	n.SetLinkDelay("x", "y", Constant(10*time.Second))
	if err := a.Send(b.Addr(), []byte("late")); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("after close err = %v, want ErrClosed (timed delivery must be cancelled)", err)
	}
}

// TestCrossShardLinkConfig checks SetLink/SetLoss/Partition take effect
// regardless of which shards the two hosts land on.
func TestCrossShardLinkConfig(t *testing.T) {
	n := New(WithSeed(5), WithShards(8))
	defer n.Close()
	// Pick host names that land on different shards.
	var names []string
	for i := 0; len(names) < 2 && i < 64; i++ {
		name := fmt.Sprintf("h%d", i)
		if len(names) == 0 || n.shardFor(name) != n.shardFor(names[0]) {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		t.Skip("could not find two hosts on distinct shards")
	}
	a, _ := n.Host(names[0]).Bind(1)
	b, _ := n.Host(names[1]).Bind(1)
	n.SetLoss(names[0], names[1], 1.0)
	// Loss must apply in both directions even though each direction is
	// routed on a different shard.
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.Addr(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.LostLink != 2 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 2 lost / 0 delivered", st)
	}
	n.SetLoss(names[0], names[1], 0)
	n.Partition([]string{names[0]}, []string{names[1]})
	if err := a.Send(b.Addr(), []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.LostCut != 1 {
		t.Fatalf("LostCut = %d, want 1", st.LostCut)
	}
	n.Heal()
	if err := a.Send(b.Addr(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatalf("recv after heal: %v", err)
	}
}

// BenchmarkNetsimParallelSendShards compares shard counts directly inside
// the package; the top-level BenchmarkNetsimParallelSend exercises the
// default configuration through the public API.
func BenchmarkNetsimParallelSendShards(b *testing.B) {
	for _, shards := range []int{1, 0} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "shards=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			benchParallelSend(b, shards)
		})
	}
}

func benchParallelSend(b *testing.B, shards int) {
	const pairs = 64
	n := New(WithSeed(1), WithShards(shards), WithQueueCap(1024))
	defer n.Close()
	srcs := make([]*Endpoint, pairs)
	dsts := make([]*Endpoint, pairs)
	for i := 0; i < pairs; i++ {
		srcs[i], _ = n.Host(fmt.Sprintf("src%d", i)).Bind(1)
		dsts[i], _ = n.Host(fmt.Sprintf("dst%d", i)).Bind(1)
		go func(e *Endpoint) {
			for {
				if _, err := e.Recv(); err != nil {
					return
				}
			}
		}(dsts[i])
	}
	payload := []byte("payload-payload-payload-payload")
	var next int64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		i := int(next) % pairs
		next++
		mu.Unlock()
		src, to := srcs[i], dsts[i].Addr()
		for pb.Next() {
			if err := src.Send(to, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
