package netsim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"caltech:80", Addr{"caltech", 80}, true},
		{"a.b.c:65535", Addr{"a.b.c", 65535}, true},
		{"nohost", Addr{}, false},
		{":80", Addr{}, false},
		{"h:99999", Addr{}, false},
		{"h:notnum", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(host string, port uint16) bool {
		if host == "" {
			return true
		}
		for _, r := range host {
			if r == ':' || r < ' ' {
				return true
			}
		}
		a := Addr{Host: host, Port: port}
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(WithSeed(7))
	defer n.Close()
	a, err := n.Host("pasadena").Bind(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Host("houston").Bind(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	dg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Payload) != "hello" {
		t.Fatalf("payload = %q, want hello", dg.Payload)
	}
	if dg.From != a.Addr() || dg.To != b.Addr() {
		t.Fatalf("addrs = %v -> %v", dg.From, dg.To)
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	b, _ := n.Host("h").Bind(2)
	buf := []byte("original")
	if err := a.Send(b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	dg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Payload) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", dg.Payload)
	}
}

func TestBindConflicts(t *testing.T) {
	n := New()
	defer n.Close()
	h := n.Host("h")
	if _, err := h.Bind(9); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Bind(9); err != ErrPortInUse {
		t.Fatalf("second bind err = %v, want ErrPortInUse", err)
	}
	e1, err := h.BindAny()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.BindAny()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Addr() == e2.Addr() {
		t.Fatal("BindAny returned duplicate addresses")
	}
	// Port becomes reusable after close.
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Bind(e1.Addr().Port); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestSendToUnknownHost(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	if err := a.Send(Addr{"nowhere", 5}, []byte("x")); err == nil {
		t.Fatal("want error sending to unknown host")
	}
}

func TestSendToClosedPortIsSilentlyDropped(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	if err := a.Send(Addr{"h", 999}, []byte("x")); err != nil {
		t.Fatalf("UDP-like send to closed port should not error: %v", err)
	}
	if got := n.Stats().Delivered; got != 0 {
		t.Fatalf("delivered = %d, want 0", got)
	}
}

func TestLossDropsDatagrams(t *testing.T) {
	n := New(WithSeed(42))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	n.SetLink("x", "y", LinkParams{Loss: 1.0})
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), []byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.LostLink != 50 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 50 lost, 0 delivered", st)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	n := New(WithSeed(11))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	n.SetLink("x", "y", LinkParams{Loss: 0.5})
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(b.Addr(), []byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.LostLink < total/4 || st.LostLink > 3*total/4 {
		t.Fatalf("lost %d of %d at p=0.5; outside sanity band", st.LostLink, total)
	}
	if st.LostLink+st.Delivered != total {
		t.Fatalf("lost %d + delivered %d != %d", st.LostLink, st.Delivered, total)
	}
}

func TestDuplication(t *testing.T) {
	n := New(WithSeed(3))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	n.SetLink("x", "y", LinkParams{Dup: 1.0})
	if err := a.Send(b.Addr(), []byte("d")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
	}
	if st := n.Stats(); st.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestReorderSwapsAdjacentDatagrams(t *testing.T) {
	n := New(WithSeed(5))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	n.SetLink("x", "y", LinkParams{Reorder: 1.0})
	// First send is stashed; the second triggers delivery of both, with the
	// second delivered first.
	if err := a.Send(b.Addr(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("2")); err != nil {
		t.Fatal(err)
	}
	d1, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1.Payload) != "2" || string(d2.Payload) != "1" {
		t.Fatalf("got order %q,%q; want 2,1", d1.Payload, d2.Payload)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	a, _ := n.Host("west").Bind(1)
	b, _ := n.Host("east").Bind(1)
	n.Partition([]string{"west"}, []string{"east"})
	if err := a.Send(b.Addr(), []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("recv across partition: err=%v, want timeout", err)
	}
	if st := n.Stats(); st.LostCut != 1 {
		t.Fatalf("LostCut = %d, want 1", st.LostCut)
	}
	n.Heal()
	if err := a.Send(b.Addr(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatalf("recv after heal: %v", err)
	}
}

func TestPartitionSameGroupDelivers(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("w1").Bind(1)
	b, _ := n.Host("w2").Bind(1)
	n.Partition([]string{"w1", "w2"}, []string{"east"})
	if err := a.Send(b.Addr(), []byte("in-group")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatalf("same-group delivery failed: %v", err)
	}
}

func TestVirtualClockAdvancesByLinkDelay(t *testing.T) {
	n := New(WithSeed(1), WithDefaultDelay(Constant(10*time.Millisecond)))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	if err := a.Send(b.Addr(), []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := b.VNow(); got != 10*time.Millisecond {
		t.Fatalf("receiver vclock = %v, want 10ms", got)
	}
	if got := a.VNow(); got != 0 {
		t.Fatalf("sender vclock = %v, want 0 (send does not advance)", got)
	}
}

func TestVirtualClockCriticalPath(t *testing.T) {
	// A 3-hop relay should accumulate 3 link delays on the critical path.
	n := New(WithSeed(1), WithDefaultDelay(Constant(5*time.Millisecond)))
	defer n.Close()
	eps := make([]*Endpoint, 4)
	for i := range eps {
		var err error
		eps[i], err = n.Host(fmt.Sprintf("h%d", i)).Bind(1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := eps[0].Send(eps[1].Addr(), []byte("hop")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		dg, err := eps[i].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			if err := eps[i].Send(eps[i+1].Addr(), dg.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := n.MaxVirtual(), 15*time.Millisecond; got != want {
		t.Fatalf("critical path = %v, want %v", got, want)
	}
}

func TestChargeCompute(t *testing.T) {
	n := New()
	defer n.Close()
	e, _ := n.Host("h").Bind(1)
	e.ChargeCompute(7 * time.Millisecond)
	if got := e.VNow(); got != 7*time.Millisecond {
		t.Fatalf("VNow = %v, want 7ms", got)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := New(WithQueueCap(4))
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	b, _ := n.Host("h").Bind(2)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Delivered != 4 || st.LostQueue != 6 {
		t.Fatalf("delivered=%d lostQueue=%d, want 4/6", st.Delivered, st.LostQueue)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := New()
	defer n.Close()
	e, _ := n.Host("h").Bind(1)
	done := make(chan error, 1)
	go func() {
		_, err := e.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestRecvDrainsQueueAfterClose(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	b, _ := n.Host("h").Bind(2)
	if err := a.Send(b.Addr(), []byte("q")); err != nil {
		t.Fatal(err)
	}
	// Ensure delivery happened before closing.
	deadline := time.Now().Add(time.Second)
	for n.Stats().Delivered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("datagram never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if dg, err := b.Recv(); err != nil || string(dg.Payload) != "q" {
		t.Fatalf("drain after close: %v %q", err, dg.Payload)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("second recv err = %v, want ErrClosed", err)
	}
}

func TestSendOnClosedEndpoint(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Host("h").Bind(1)
	b, _ := n.Host("h").Bind(2)
	a.Close()
	if err := a.Send(b.Addr(), []byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestNetworkCloseIsIdempotentAndFinal(t *testing.T) {
	n := New()
	e, _ := n.Host("h").Bind(1)
	n.Close()
	n.Close()
	if err := e.Send(e.Addr(), []byte("x")); err != ErrClosed {
		t.Fatalf("send after close err = %v, want ErrClosed", err)
	}
	if _, err := n.Host("h2").Bind(1); err != ErrClosed {
		t.Fatalf("bind after close err = %v, want ErrClosed", err)
	}
}

func TestRealTimeScaleDelaysDelivery(t *testing.T) {
	n := New(WithTimeScale(1.0), WithDefaultDelay(Constant(30*time.Millisecond)))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	start := time.Now()
	if err := a.Send(b.Addr(), []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivery after %v, want >= ~30ms", elapsed)
	}
}

func TestConcurrentSendersAreSafe(t *testing.T) {
	n := New(WithSeed(9), WithQueueCap(100000))
	defer n.Close()
	dst, _ := n.Host("sink").Bind(1)
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		e, err := n.Host(fmt.Sprintf("src%d", s)).Bind(1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := e.Send(dst.Addr(), []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	got := 0
	for {
		if _, err := dst.RecvTimeout(100 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	if got != senders*per {
		t.Fatalf("received %d, want %d", got, senders*per)
	}
}

func TestDelayModels(t *testing.T) {
	r := newTestRand()
	models := []struct {
		name string
		m    DelayModel
	}{
		{"loopback", Loopback()},
		{"lan", LAN()},
		{"campus", Campus()},
		{"wan", WAN()},
		{"intercontinental", Intercontinental()},
		{"constant", Constant(time.Millisecond)},
		{"uniform", Uniform(time.Millisecond, 2*time.Millisecond)},
		{"spiky", Spiky(Constant(time.Millisecond), 0.5, 10*time.Millisecond)},
	}
	for _, tc := range models {
		var sum time.Duration
		for i := 0; i < 1000; i++ {
			d := tc.m.Sample(r)
			if d < 0 {
				t.Fatalf("%s: negative delay %v", tc.name, d)
			}
			sum += d
		}
		mean := sum / 1000
		if tc.m.Mean() > 0 {
			ratio := float64(mean) / float64(tc.m.Mean())
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s: empirical mean %v vs declared %v", tc.name, mean, tc.m.Mean())
			}
		}
	}
}

func TestUniformDegenerateRange(t *testing.T) {
	m := Uniform(time.Millisecond, time.Millisecond)
	if d := m.Sample(newTestRand()); d != time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestStatsVirtualAggregates(t *testing.T) {
	n := New(WithDefaultDelay(Constant(4 * time.Millisecond)))
	defer n.Close()
	a, _ := n.Host("x").Bind(1)
	b, _ := n.Host("y").Bind(1)
	if err := a.Send(b.Addr(), []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.MaxVirtual != 4*time.Millisecond {
		t.Fatalf("MaxVirtual = %v", st.MaxVirtual)
	}
	if st.MeanVirtual != 2*time.Millisecond {
		t.Fatalf("MeanVirtual = %v", st.MeanVirtual)
	}
}

func TestCrashDropsInboundAndOutbound(t *testing.T) {
	n := New(WithSeed(11))
	defer n.Close()
	a, _ := n.Host("alive").Bind(1)
	b, _ := n.Host("victim").Bind(1)

	// Sanity: traffic flows both ways before the crash.
	if err := a.Send(b.Addr(), []byte("pre")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}

	n.Crash("victim")
	if !n.Crashed("victim") {
		t.Fatal("Crashed(victim) = false after Crash")
	}
	before := n.Stats()
	if err := a.Send(b.Addr(), []byte("to-victim")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.Addr(), []byte("from-victim")); err != nil {
		t.Fatal(err)
	}
	after := n.Stats()
	if got := after.LostCrash - before.LostCrash; got != 2 {
		t.Fatalf("LostCrash delta = %d, want 2", got)
	}
	if _, err := b.RecvTimeout(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("crashed host received a datagram (err=%v)", err)
	}

	n.Restart("victim")
	if n.Crashed("victim") {
		t.Fatal("Crashed(victim) = true after Restart")
	}
	if err := a.Send(b.Addr(), []byte("post")); err != nil {
		t.Fatal(err)
	}
	dg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Payload) != "post" {
		t.Fatalf("restarted host got %q, want %q (outage traffic must not replay)", dg.Payload, "post")
	}
}

func TestCrashDropsInFlightTimedDeliveries(t *testing.T) {
	// Time-scaled network: datagrams sit in the timer queue long enough
	// for a crash to land while they are in flight.
	n := New(WithSeed(12), WithDefaultDelay(Constant(50*time.Millisecond)), WithTimeScale(1))
	defer n.Close()
	a, _ := n.Host("src").Bind(1)
	b, _ := n.Host("dst").Bind(1)
	if err := a.Send(b.Addr(), []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	n.Crash("dst")
	if _, err := b.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("in-flight datagram delivered to crashed host (err=%v)", err)
	}
	st := n.Stats()
	if st.LostCrash != 1 {
		t.Fatalf("LostCrash = %d, want 1", st.LostCrash)
	}
}

func TestCrashConsumesNoRandomDraws(t *testing.T) {
	// Two same-seed runs, one with a crash/restart of an uninvolved host
	// in the middle, must deliver identical loss patterns: crash is
	// control-plane and must not disturb the shard's random stream.
	run := func(crash bool) []bool {
		n := New(WithSeed(33), WithShards(1))
		defer n.Close()
		n.SetLoss("s", "d", 0.5)
		src, _ := n.Host("s").Bind(1)
		dst, _ := n.Host("d").Bind(1)
		var got []bool
		for i := 0; i < 64; i++ {
			if crash && i == 32 {
				n.Crash("bystander")
				n.Restart("bystander")
			}
			if err := src.Send(dst.Addr(), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			_, err := dst.RecvTimeout(time.Millisecond)
			got = append(got, err == nil)
		}
		return got
	}
	plain, crashed := run(false), run(true)
	for i := range plain {
		if plain[i] != crashed[i] {
			t.Fatalf("loss pattern diverged at send %d: crash consumed a random draw", i)
		}
	}
}

func TestCrashDropsReorderStashedDatagram(t *testing.T) {
	// A Reorder stash holds a datagram until the link's next send; a
	// crash must discard it, or a pre-crash datagram would resurrect
	// after restart.
	n := New(WithSeed(13))
	defer n.Close()
	n.SetLink("src", "dst", LinkParams{Reorder: 1.0})
	a, _ := n.Host("src").Bind(1)
	b, _ := n.Host("dst").Bind(1)
	if err := a.Send(b.Addr(), []byte("stashed")); err != nil {
		t.Fatal(err)
	}
	n.Crash("dst")
	n.Restart("dst")
	n.SetLink("src", "dst", LinkParams{}) // no reordering for the flush probe
	if err := a.Send(b.Addr(), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	dg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Payload) != "fresh" {
		t.Fatalf("got %q; the crashed link's stash leaked through", dg.Payload)
	}
	if _, err := b.RecvTimeout(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("stashed pre-crash datagram was delivered (err=%v)", err)
	}
	if st := n.Stats(); st.LostCrash != 1 {
		t.Fatalf("LostCrash = %d, want 1 (the discarded stash)", st.LostCrash)
	}
}

func TestWireBytesCountsDatagramOverhead(t *testing.T) {
	// WireBytes models the on-the-wire cost of every datagram: payload
	// plus the configured per-datagram header overhead. Two datagrams of
	// 10 bytes at the default 28-byte overhead cost 76 wire bytes; with
	// a custom overhead the charge follows.
	for _, tc := range []struct {
		overhead []Option
		per      int
	}{
		{nil, DefaultDatagramOverhead},
		{[]Option{WithDatagramOverhead(100)}, 100},
		{[]Option{WithDatagramOverhead(0)}, 0},
	} {
		n := New(tc.overhead...)
		a, _ := n.Host("x").Bind(1)
		b, _ := n.Host("y").Bind(1)
		for i := 0; i < 2; i++ {
			if err := a.Send(b.Addr(), make([]byte, 10)); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		want := uint64(2 * (10 + tc.per))
		if st := n.Stats(); st.WireBytes != want {
			t.Fatalf("overhead %d: WireBytes = %d, want %d", tc.per, st.WireBytes, want)
		}
		n.Close()
	}
}
