package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is the global address of a communication endpoint: a host name
// (standing in for an IP address) and a port. The paper associates each
// dapplet with "an Internet address i.e. IP address and port id" (§3.1).
type Addr struct {
	Host string
	Port uint16
}

// String renders the address in the conventional "host:port" form.
func (a Addr) String() string {
	return a.Host + ":" + strconv.Itoa(int(a.Port))
}

// IsZero reports whether a is the zero address.
func (a Addr) IsZero() bool { return a.Host == "" && a.Port == 0 }

// ParseAddr parses "host:port" into an Addr.
func ParseAddr(s string) (Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Addr{}, fmt.Errorf("netsim: address %q missing port", s)
	}
	host := s[:i]
	if host == "" {
		return Addr{}, fmt.Errorf("netsim: address %q missing host", s)
	}
	p, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: address %q has bad port: %v", s, err)
	}
	return Addr{Host: host, Port: uint16(p)}, nil
}
