// Package netsim provides a deterministic simulation of a world-wide
// datagram network: named hosts, point-to-point links with configurable
// delay distributions, probabilistic loss, duplication and reordering,
// and network partitions.
//
// The simulator models the environment the paper's communication layer is
// designed against (§2.2 "Coping with a Varied Network Environment" and
// §3.2 "uses UDP"): datagrams may be dropped, duplicated, reordered, and
// delayed arbitrarily, and delays on one channel are independent of delays
// on other channels.
//
// In addition to (optionally scaled) real-time delivery, every endpoint
// carries a virtual clock: a datagram is stamped with the sender's virtual
// time plus a sampled link delay, and a receiver's clock advances to the
// maximum of its own clock and the datagram's arrival stamp. The maximum
// virtual clock across endpoints therefore measures the critical-path
// latency of a distributed protocol with WAN-scale delays, while the
// simulation itself runs in microseconds of real time.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is the global address of a communication endpoint: a host name
// (standing in for an IP address) and a port. The paper associates each
// dapplet with "an Internet address i.e. IP address and port id" (§3.1).
type Addr struct {
	Host string
	Port uint16
}

// String renders the address in the conventional "host:port" form.
func (a Addr) String() string {
	return a.Host + ":" + strconv.Itoa(int(a.Port))
}

// IsZero reports whether a is the zero address.
func (a Addr) IsZero() bool { return a.Host == "" && a.Port == 0 }

// ParseAddr parses "host:port" into an Addr.
func ParseAddr(s string) (Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Addr{}, fmt.Errorf("netsim: address %q missing port", s)
	}
	host := s[:i]
	if host == "" {
		return Addr{}, fmt.Errorf("netsim: address %q missing host", s)
	}
	p, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: address %q has bad port: %v", s, err)
	}
	return Addr{Host: host, Port: uint16(p)}, nil
}
