package netsim

import (
	"math/rand"
	"time"
)

// A DelayModel samples per-datagram one-way link delays. Implementations
// must be safe for use from a single goroutine at a time; the Network
// serializes sampling per delivery shard internally.
type DelayModel interface {
	// Sample returns the (virtual) one-way delay for one datagram.
	Sample(r *rand.Rand) time.Duration
	// Mean returns the expected delay, used for reporting.
	Mean() time.Duration
}

type constantDelay struct{ d time.Duration }

func (c constantDelay) Sample(*rand.Rand) time.Duration { return c.d }
func (c constantDelay) Mean() time.Duration             { return c.d }

// Constant returns a model with a fixed one-way delay.
func Constant(d time.Duration) DelayModel { return constantDelay{d} }

type uniformDelay struct{ lo, hi time.Duration }

func (u uniformDelay) Sample(r *rand.Rand) time.Duration {
	if u.hi <= u.lo {
		return u.lo
	}
	return u.lo + time.Duration(r.Int63n(int64(u.hi-u.lo)))
}
func (u uniformDelay) Mean() time.Duration { return (u.lo + u.hi) / 2 }

// Uniform returns a model drawing delays uniformly from [lo, hi).
func Uniform(lo, hi time.Duration) DelayModel { return uniformDelay{lo, hi} }

type spikeDelay struct {
	base  DelayModel
	prob  float64
	spike time.Duration
}

func (s spikeDelay) Sample(r *rand.Rand) time.Duration {
	d := s.base.Sample(r)
	if r.Float64() < s.prob {
		d += s.spike
	}
	return d
}
func (s spikeDelay) Mean() time.Duration {
	return s.base.Mean() + time.Duration(float64(s.spike)*s.prob)
}

// Spiky wraps base so that with probability prob a datagram suffers an
// additional fixed spike delay, modelling transient congestion.
func Spiky(base DelayModel, prob float64, spike time.Duration) DelayModel {
	return spikeDelay{base: base, prob: prob, spike: spike}
}

// Canonical delay profiles used throughout the experiments. The values are
// order-of-magnitude representative of the paper's setting: processes "in
// the same building in Pasadena" versus a peer "in Australia" (§2.2).
func Loopback() DelayModel { return Uniform(20*time.Microsecond, 80*time.Microsecond) }

// LAN models a same-building link.
func LAN() DelayModel { return Uniform(200*time.Microsecond, 800*time.Microsecond) }

// Campus models a same-site, cross-building link.
func Campus() DelayModel { return Uniform(1*time.Millisecond, 3*time.Millisecond) }

// WAN models a cross-country Internet path (e.g. Caltech to Tennessee).
func WAN() DelayModel {
	return Spiky(Uniform(30*time.Millisecond, 50*time.Millisecond), 0.02, 120*time.Millisecond)
}

// Intercontinental models a very long path (e.g. Pasadena to Australia).
func Intercontinental() DelayModel {
	return Spiky(Uniform(140*time.Millisecond, 190*time.Millisecond), 0.05, 300*time.Millisecond)
}
