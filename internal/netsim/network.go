package netsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults used when a link or the network has no explicit configuration.
const (
	DefaultQueueCap = 1024
)

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = errors.New("netsim: closed")

// ErrPortInUse is returned by Bind when the port is already bound.
var ErrPortInUse = errors.New("netsim: port in use")

// ErrNoRoute is returned by Send when the destination host does not exist.
var ErrNoRoute = errors.New("netsim: no route to host")

type config struct {
	seed         int64
	defaultDelay DelayModel
	timeScale    float64 // real delay = virtual delay * timeScale
	queueCap     int
	shards       int // 0 means GOMAXPROCS
	overhead     int // modelled per-datagram wire overhead bytes
}

// DefaultDatagramOverhead is the modelled per-datagram wire overhead:
// a UDP header over IPv4 (28 bytes). Stats.WireBytes adds it to every
// datagram's payload, so transports that coalesce many small frames
// into one datagram show their on-wire byte saving.
const DefaultDatagramOverhead = 28

// Option configures a Network at construction time.
type Option func(*config)

// WithSeed fixes the simulator's random seed for reproducible runs. Each
// shard derives its own stream as seed ^ hash(shard index), so a run is
// reproducible per seed for any fixed shard count (see WithShards).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithDefaultDelay sets the delay model for links with no explicit model.
func WithDefaultDelay(m DelayModel) Option { return func(c *config) { c.defaultDelay = m } }

// WithTimeScale sets the ratio of real delivery delay to virtual link delay.
// The default 0 delivers datagrams immediately (virtual time still advances
// by the full modelled delay); 1.0 delivers in real time.
func WithTimeScale(s float64) Option { return func(c *config) { c.timeScale = s } }

// WithQueueCap sets the per-endpoint receive queue capacity; datagrams
// arriving at a full queue are dropped, like a full UDP socket buffer.
func WithQueueCap(n int) Option { return func(c *config) { c.queueCap = n } }

// WithDatagramOverhead sets the modelled per-datagram wire overhead in
// bytes added to Stats.WireBytes (default DefaultDatagramOverhead;
// negative clamps to 0, counting payload bytes only).
func WithDatagramOverhead(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.overhead = n
	}
}

// WithShards sets the number of delivery shards hosts are partitioned
// across. Each shard has its own lock, its own seeded random stream and
// its own timer queue, so sends to hosts on different shards never
// contend. The default (0) uses GOMAXPROCS. WithShards(1) serializes all
// routing decisions on one stream, making a single-threaded run fully
// deterministic per seed.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

type linkKey struct{ a, b string }

func mkLinkKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// LinkParams describes the behaviour of the (bidirectional) link between a
// pair of hosts. A zero LinkParams means "use network defaults, no faults".
type LinkParams struct {
	Delay   DelayModel // nil means the network default
	Loss    float64    // probability a datagram is silently dropped
	Dup     float64    // probability a datagram is delivered twice
	Reorder float64    // probability a datagram is delivered after its successor
}

// Stats is a snapshot of network-wide counters. The counters are summed
// from per-shard state without a global lock, so while the network is
// carrying traffic the fields may be mutually inconsistent (e.g.
// Delivered can momentarily exceed what the captured Sent implies); the
// balance Sent + Duplicated = Delivered + Lost* + reorder slots held is
// exact once the network is quiescent.
type Stats struct {
	Sent        uint64 // datagrams submitted to Send
	Delivered   uint64 // datagrams handed to a receive queue
	LostLink    uint64 // dropped by link loss
	LostQueue   uint64 // dropped at a full receive queue
	LostCut     uint64 // dropped by a partition
	LostCrash   uint64 // dropped because an endpoint's host was crashed
	Duplicated  uint64 // extra copies delivered
	Reordered   uint64 // datagrams deferred behind a successor
	BytesSent   uint64
	WireBytes   uint64        // payload bytes plus modelled per-datagram overhead (see WithDatagramOverhead)
	MaxVirtual  time.Duration // max endpoint virtual clock
	MeanVirtual time.Duration // mean endpoint virtual clock
}

// Network is a simulated world-wide datagram network. All methods are safe
// for concurrent use.
//
// Internally the network is sharded: every host is owned by exactly one
// shard (chosen by hashing the host name), and all routing state for
// datagrams delivered INTO that host — link parameters, partition view,
// reorder slots, the random stream and the timer queue — lives on the
// owning shard under its own lock. Send on disjoint destination hosts
// therefore never contends.
type Network struct {
	cfg    config
	shards []*shard

	closed    atomic.Bool
	closeOnce sync.Once
	done      chan struct{} // closed on Close; stops shard timer goroutines
}

// New creates an empty network.
func New(opts ...Option) *Network {
	cfg := config{
		seed:         1,
		defaultDelay: LAN(),
		timeScale:    0,
		queueCap:     DefaultQueueCap,
		overhead:     DefaultDatagramOverhead,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards <= 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	n := &Network{
		cfg:    cfg,
		shards: make([]*shard, cfg.shards),
		done:   make(chan struct{}),
	}
	for i := range n.shards {
		n.shards[i] = newShard(cfg.seed, i)
	}
	return n
}

// Shards returns the number of delivery shards.
func (n *Network) Shards() int { return len(n.shards) }

// shardFor returns the shard owning the named host.
func (n *Network) shardFor(host string) *shard {
	if len(n.shards) == 1 {
		return n.shards[0]
	}
	return n.shards[hashString(host)%uint64(len(n.shards))]
}

// Host returns the named host, creating it on first use.
func (n *Network) Host(name string) *Host {
	s := n.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hosts[name]; ok {
		return h
	}
	h := &Host{net: n, shard: s, name: name, ports: make(map[uint16]*Endpoint), nextPort: 40000}
	s.hosts[name] = h
	return h
}

// Hosts returns the names of all hosts, in no particular order.
func (n *Network) Hosts() []string {
	var out []string
	for _, s := range n.shards {
		s.mu.Lock()
		for name := range s.hosts {
			out = append(out, name)
		}
		s.mu.Unlock()
	}
	return out
}

// updateLink applies f to the a<->b link parameters. The authoritative
// copy for each delivery direction lives on the destination host's shard,
// so the update is applied on both endpoints' shards.
func (n *Network) updateLink(a, b string, f func(*LinkParams)) {
	k := mkLinkKey(a, b)
	sa, sb := n.shardFor(a), n.shardFor(b)
	for _, s := range []*shard{sa, sb} {
		s.mu.Lock()
		p := s.links[k]
		f(&p)
		s.links[k] = p
		s.version++
		s.mu.Unlock()
		if sa == sb {
			break
		}
	}
}

// SetLink configures the bidirectional link between hosts a and b.
func (n *Network) SetLink(a, b string, p LinkParams) {
	n.updateLink(a, b, func(dst *LinkParams) { *dst = p })
}

// SetLinkDelay configures only the delay model of the a<->b link, keeping
// any existing fault parameters.
func (n *Network) SetLinkDelay(a, b string, m DelayModel) {
	n.updateLink(a, b, func(p *LinkParams) { p.Delay = m })
}

// SetLoss configures only the loss probability of the a<->b link.
func (n *Network) SetLoss(a, b string, loss float64) {
	n.updateLink(a, b, func(p *LinkParams) { p.Loss = loss })
}

// Partition splits the network into the given host groups; datagrams
// between different groups are dropped. Hosts not named in any group form
// an implicit extra group. Heal removes the partition.
func (n *Network) Partition(groups ...[]string) {
	m := make(map[string]int)
	for i, g := range groups {
		for _, h := range g {
			m[h] = i + 1
		}
	}
	n.setGroups(m)
}

// Heal removes any partition.
func (n *Network) Heal() { n.setGroups(map[string]int{}) }

// Crash marks a host as crashed. While crashed, every datagram addressed
// to or sent from the host is dropped (counted as LostCrash), including
// time-scaled deliveries already in flight when Crash is called — they
// are discarded at their delivery instant, matching a machine that lost
// power with packets on the wire. Endpoints on the host stay bound, so a
// restarted host keeps its addresses. Crash is a control-plane change
// like Partition: it consumes no random draws, so seeded replay is
// unaffected.
func (n *Network) Crash(host string) { n.setDown(host, true) }

// Restart brings a crashed host back: datagrams flow to and from it
// again. Nothing dropped during the outage is replayed.
func (n *Network) Restart(host string) { n.setDown(host, false) }

// Crashed reports whether the host is currently crashed.
func (n *Network) Crashed(host string) bool {
	s := n.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down[host]
}

// setDown installs the host's crash state on every shard, so both the
// source-side and destination-side checks in route see it. Like
// Partition, a send racing with Crash may see either the old or the new
// view. A crash also discards reorder-stashed datagrams on the host's
// links: a stash flushes with the link's next routed datagram, which
// could otherwise resurrect a pre-crash datagram after a restart.
func (n *Network) setDown(host string, down bool) {
	for _, s := range n.shards {
		s.mu.Lock()
		if down {
			s.down[host] = true
			for key := range s.pending {
				if key.a == host || key.b == host {
					delete(s.pending, key)
					s.ctr.lostCrash++
				}
			}
		} else {
			delete(s.down, host)
		}
		s.mu.Unlock()
	}
}

// setGroups installs a copy of the partition map on every shard. Routing
// reads only the destination shard's copy, so a send racing with
// Partition may see either the old or the new view — the same guarantee
// the single-lock design gave concurrent senders.
func (n *Network) setGroups(m map[string]int) {
	for _, s := range n.shards {
		cp := make(map[string]int, len(m))
		for k, v := range m {
			cp[k] = v
		}
		s.mu.Lock()
		s.groups = cp
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the network counters, including virtual-time
// aggregates across all endpoints. See the Stats type for the consistency
// guarantee: the counters balance exactly only at quiescence.
func (n *Network) Stats() Stats {
	var s Stats
	var sum time.Duration
	var cnt int
	var max time.Duration
	for _, sh := range n.shards {
		sh.mu.Lock()
		s.Sent += sh.ctr.sent
		s.LostLink += sh.ctr.lostLink
		s.LostCut += sh.ctr.lostCut
		s.LostCrash += sh.ctr.lostCrash
		s.Duplicated += sh.ctr.duplicated
		s.Reordered += sh.ctr.reordered
		s.BytesSent += sh.ctr.bytesSent
		s.WireBytes += sh.ctr.wireBytes
		eps := make([]*Endpoint, 0, 8)
		for _, h := range sh.hosts {
			for _, e := range h.ports {
				eps = append(eps, e)
			}
		}
		sh.mu.Unlock()
		s.Delivered += sh.ctr.delivered.Load()
		s.LostQueue += sh.ctr.lostQueue.Load()
		for _, e := range eps {
			v := e.VNow()
			if v > max {
				max = v
			}
			sum += v
			cnt++
		}
	}
	s.MaxVirtual = max
	if cnt > 0 {
		s.MeanVirtual = sum / time.Duration(cnt)
	}
	return s
}

// Counters returns the network counters without the virtual-time
// aggregates: unlike Stats it never walks the endpoint tables, so it is
// O(shards) and safe to sample at high frequency over a network with
// hundreds of thousands of endpoints (the swarm harness snapshots it at
// every phase boundary). MaxVirtual and MeanVirtual are left zero.
func (n *Network) Counters() Stats {
	var s Stats
	for _, sh := range n.shards {
		sh.mu.Lock()
		s.Sent += sh.ctr.sent
		s.LostLink += sh.ctr.lostLink
		s.LostCut += sh.ctr.lostCut
		s.LostCrash += sh.ctr.lostCrash
		s.Duplicated += sh.ctr.duplicated
		s.Reordered += sh.ctr.reordered
		s.BytesSent += sh.ctr.bytesSent
		s.WireBytes += sh.ctr.wireBytes
		sh.mu.Unlock()
		s.Delivered += sh.ctr.delivered.Load()
		s.LostQueue += sh.ctr.lostQueue.Load()
	}
	return s
}

// MaxVirtual returns the maximum endpoint virtual clock: the critical-path
// completion time of everything simulated so far.
func (n *Network) MaxVirtual() time.Duration { return n.Stats().MaxVirtual }

// Close shuts the network down, closing every endpoint. In-flight timed
// deliveries are cancelled.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		close(n.done) // stops every shard's timer goroutine
		var hosts []*Host
		for _, s := range n.shards {
			s.mu.Lock()
			s.timerQ = nil
			for _, h := range s.hosts {
				hosts = append(hosts, h)
			}
			s.mu.Unlock()
		}
		for _, h := range hosts {
			h.closeAll()
		}
	})
}

// linkFor returns the parameters for the a<->b link from the given
// shard's view, applying defaults. Caller must hold s.mu.
func (n *Network) linkFor(s *shard, a, b string) LinkParams {
	p := s.links[mkLinkKey(a, b)]
	if p.Delay == nil {
		p.Delay = n.cfg.defaultDelay
	}
	return p
}

// routeEntry is a cached resolution of one destination address: the
// owning shard, the destination endpoint and the effective link
// parameters. Entries are immutable; a shard version mismatch (link
// reconfigured, endpoint closed) forces a re-resolution.
type routeEntry struct {
	ver uint64
	to  Addr
	s   *shard
	dst *Endpoint
	lp  LinkParams
	key linkKey
}

// route performs loss/partition/duplication/reorder decisions and
// schedules delivery of one datagram. All decisions for a datagram are
// made on the destination host's shard, under that shard's lock and with
// that shard's random stream. Caller must not hold any shard lock.
func (n *Network) route(from *Endpoint, to Addr, payload []byte) error {
	if n.closed.Load() {
		return ErrClosed
	}
	var (
		s   *shard
		dst *Endpoint
		lp  LinkParams
		key linkKey
	)
	if c := from.rcache.Load(); c != nil && c.to == to {
		s = c.s
		s.mu.Lock()
		if s.version == c.ver {
			dst, lp, key = c.dst, c.lp, c.key
		}
	} else {
		s = n.shardFor(to.Host)
		s.mu.Lock()
	}
	if dst == nil {
		dstHost, ok := s.hosts[to.Host]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNoRoute, to.Host)
		}
		lp = n.linkFor(s, from.addr.Host, to.Host)
		key = mkLinkKey(from.addr.Host, to.Host)
		dst = dstHost.ports[to.Port]
		if dst != nil {
			// Fill the single cache slot only when it is empty, refreshing
			// this same destination, or holding an entry this shard has
			// already invalidated. A fan-out sender alternating between
			// destinations otherwise evicts on every send, paying a
			// routeEntry allocation per datagram for a cache that never
			// hits.
			if c := from.rcache.Load(); c == nil || c.to == to || (c.s == s && c.ver != s.version) {
				from.rcache.Store(&routeEntry{ver: s.version, to: to, s: s, dst: dst, lp: lp, key: key})
			}
		}
	}
	s.ctr.sent++
	s.ctr.bytesSent += uint64(len(payload))
	s.ctr.wireBytes += uint64(len(payload) + n.cfg.overhead)

	// Crash check: a crashed machine neither sends nor receives. The
	// check reads the destination shard's copy of the crash view, the
	// same consistency Partition offers concurrent senders.
	if len(s.down) > 0 && (s.down[from.addr.Host] || s.down[to.Host]) {
		s.ctr.lostCrash++
		s.mu.Unlock()
		return nil
	}

	// Partition check: distinct explicit groups never communicate; an
	// explicit group is also cut off from the implicit group 0.
	if len(s.groups) > 0 {
		ga, gb := s.groups[from.addr.Host], s.groups[to.Host]
		if ga != gb {
			s.ctr.lostCut++
			s.mu.Unlock()
			return nil
		}
	}

	if lp.Loss > 0 && s.rng.Float64() < lp.Loss {
		s.ctr.lostLink++
		s.mu.Unlock()
		return nil
	}

	if dst == nil {
		// No listener: silently dropped, like UDP to a closed port.
		s.ctr.lostQueue.Add(1)
		s.mu.Unlock()
		return nil
	}

	vdelay := lp.Delay.Sample(s.rng)
	dg := Datagram{
		From:    from.addr,
		To:      to,
		Payload: s.clonePayload(payload),
		VSent:   from.VNow(),
	}
	dg.VArrive = dg.VSent + vdelay

	// Reordering: with probability Reorder, stash this datagram and deliver
	// it only after the next datagram on the same link (or at flush).
	var flushed *Datagram
	if len(s.pending) > 0 {
		if prev := s.pending[key]; prev != nil {
			delete(s.pending, key)
			flushed = prev
		}
	}
	if lp.Reorder > 0 && s.rng.Float64() < lp.Reorder && flushed == nil {
		s.ctr.reordered++
		// Copy to a branch-local so only this rare path heap-allocates;
		// taking &dg directly would force every datagram to escape.
		stash := dg
		s.pending[key] = &stash
		s.mu.Unlock()
		return nil
	}

	// Duplication is rolled only for a datagram actually being delivered
	// (a reorder-stashed one returned above), keeping the Duplicated
	// counter exact. The duplicate gets its own payload copy so every
	// delivery hands the receiver an exclusively owned slice (see
	// Endpoint.Recv).
	var dup *Datagram
	if lp.Dup > 0 && s.rng.Float64() < lp.Dup {
		d2 := dg
		d2.Payload = s.clonePayload(payload)
		dup = &d2
		s.ctr.duplicated++
	}
	realDelay := time.Duration(float64(vdelay) * n.cfg.timeScale)

	if realDelay > 0 {
		due := time.Now().Add(realDelay) //wwlint:allow determinism real-time pacing path: seeded replays run timeScale=0 and never schedule timed deliveries
		s.scheduleLocked(n, due, dst, dg)
		if dup != nil {
			s.scheduleLocked(n, due, dst, *dup)
		}
		if flushed != nil {
			s.scheduleLocked(n, due, dst, *flushed)
		}
		s.mu.Unlock()
		s.wakeTimer()
		return nil
	}
	s.mu.Unlock()

	n.deliver(dst, dg)
	if dup != nil {
		n.deliver(dst, *dup)
	}
	if flushed != nil {
		n.deliver(dst, *flushed)
	}
	return nil
}

// deliver hands dg to dst's receive queue, dropping it if the queue is
// full. It touches only the endpoint channel and the owning shard's
// atomic delivery counters, so it runs without any shard lock.
func (n *Network) deliver(dst *Endpoint, dg Datagram) {
	ctr := &dst.host.shard.ctr
	select {
	case dst.queue <- dg:
		ctr.delivered.Add(1)
	default:
		ctr.lostQueue.Add(1)
	}
}

// hashString is FNV-1a, used to map host names to shards.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
