package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Defaults used when a link or the network has no explicit configuration.
const (
	DefaultQueueCap = 1024
)

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = errors.New("netsim: closed")

// ErrPortInUse is returned by Bind when the port is already bound.
var ErrPortInUse = errors.New("netsim: port in use")

// ErrNoRoute is returned by Send when the destination host does not exist.
var ErrNoRoute = errors.New("netsim: no route to host")

type config struct {
	seed         int64
	defaultDelay DelayModel
	timeScale    float64 // real delay = virtual delay * timeScale
	queueCap     int
}

// Option configures a Network at construction time.
type Option func(*config)

// WithSeed fixes the simulator's random seed for reproducible runs.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithDefaultDelay sets the delay model for links with no explicit model.
func WithDefaultDelay(m DelayModel) Option { return func(c *config) { c.defaultDelay = m } }

// WithTimeScale sets the ratio of real delivery delay to virtual link delay.
// The default 0 delivers datagrams immediately (virtual time still advances
// by the full modelled delay); 1.0 delivers in real time.
func WithTimeScale(s float64) Option { return func(c *config) { c.timeScale = s } }

// WithQueueCap sets the per-endpoint receive queue capacity; datagrams
// arriving at a full queue are dropped, like a full UDP socket buffer.
func WithQueueCap(n int) Option { return func(c *config) { c.queueCap = n } }

type linkKey struct{ a, b string }

func mkLinkKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// LinkParams describes the behaviour of the (bidirectional) link between a
// pair of hosts. A zero LinkParams means "use network defaults, no faults".
type LinkParams struct {
	Delay   DelayModel // nil means the network default
	Loss    float64    // probability a datagram is silently dropped
	Dup     float64    // probability a datagram is delivered twice
	Reorder float64    // probability a datagram is delivered after its successor
}

// Stats is a snapshot of network-wide counters.
type Stats struct {
	Sent        uint64 // datagrams submitted to Send
	Delivered   uint64 // datagrams handed to a receive queue
	LostLink    uint64 // dropped by link loss
	LostQueue   uint64 // dropped at a full receive queue
	LostCut     uint64 // dropped by a partition
	Duplicated  uint64 // extra copies delivered
	Reordered   uint64 // datagrams deferred behind a successor
	BytesSent   uint64
	MaxVirtual  time.Duration // max endpoint virtual clock
	MeanVirtual time.Duration // mean endpoint virtual clock
}

// Network is a simulated world-wide datagram network. All methods are safe
// for concurrent use.
type Network struct {
	cfg config

	mu       sync.Mutex
	rng      *rand.Rand
	hosts    map[string]*Host
	links    map[linkKey]LinkParams
	groups   map[string]int // partition group per host; empty map = fully connected
	stats    Stats
	pending  map[linkKey]*Datagram // reorder slots
	timers   map[*time.Timer]struct{}
	closed   bool
	deliverW sync.WaitGroup
}

// New creates an empty network.
func New(opts ...Option) *Network {
	cfg := config{
		seed:         1,
		defaultDelay: LAN(),
		timeScale:    0,
		queueCap:     DefaultQueueCap,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.seed)),
		hosts:   make(map[string]*Host),
		links:   make(map[linkKey]LinkParams),
		groups:  make(map[string]int),
		pending: make(map[linkKey]*Datagram),
		timers:  make(map[*time.Timer]struct{}),
	}
}

// Host returns the named host, creating it on first use.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{net: n, name: name, ports: make(map[uint16]*Endpoint), nextPort: 40000}
	n.hosts[name] = h
	return h
}

// Hosts returns the names of all hosts, in no particular order.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		out = append(out, name)
	}
	return out
}

// SetLink configures the bidirectional link between hosts a and b.
func (n *Network) SetLink(a, b string, p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[mkLinkKey(a, b)] = p
}

// SetLinkDelay configures only the delay model of the a<->b link, keeping
// any existing fault parameters.
func (n *Network) SetLinkDelay(a, b string, m DelayModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := mkLinkKey(a, b)
	p := n.links[k]
	p.Delay = m
	n.links[k] = p
}

// SetLoss configures only the loss probability of the a<->b link.
func (n *Network) SetLoss(a, b string, loss float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := mkLinkKey(a, b)
	p := n.links[k]
	p.Loss = loss
	n.links[k] = p
}

// Partition splits the network into the given host groups; datagrams
// between different groups are dropped. Hosts not named in any group form
// an implicit extra group. Heal removes the partition.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[string]int)
	for i, g := range groups {
		for _, h := range g {
			n.groups[h] = i + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[string]int)
}

// Stats returns a snapshot of the network counters, including virtual-time
// aggregates across all endpoints.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	s := n.stats
	var sum time.Duration
	var cnt int
	var max time.Duration
	for _, h := range n.hosts {
		for _, e := range h.ports {
			v := e.VNow()
			if v > max {
				max = v
			}
			sum += v
			cnt++
		}
	}
	n.mu.Unlock()
	s.MaxVirtual = max
	if cnt > 0 {
		s.MeanVirtual = sum / time.Duration(cnt)
	}
	return s
}

// MaxVirtual returns the maximum endpoint virtual clock: the critical-path
// completion time of everything simulated so far.
func (n *Network) MaxVirtual() time.Duration { return n.Stats().MaxVirtual }

// Close shuts the network down, closing every endpoint. In-flight timed
// deliveries are cancelled.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = make(map[*time.Timer]struct{})
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()
	for _, h := range hosts {
		h.closeAll()
	}
}

// linkFor returns the parameters for the a<->b link, applying defaults.
func (n *Network) linkFor(a, b string) LinkParams {
	p := n.links[mkLinkKey(a, b)]
	if p.Delay == nil {
		p.Delay = n.cfg.defaultDelay
	}
	return p
}

// route performs loss/partition/duplication/reorder decisions and schedules
// delivery of one datagram. Caller must not hold n.mu.
func (n *Network) route(from *Endpoint, to Addr, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dstHost, ok := n.hosts[to.Host]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoRoute, to.Host)
	}
	n.stats.Sent++
	n.stats.BytesSent += uint64(len(payload))

	// Partition check: distinct explicit groups never communicate; an
	// explicit group is also cut off from the implicit group 0.
	if len(n.groups) > 0 {
		ga, gb := n.groups[from.addr.Host], n.groups[to.Host]
		if ga != gb {
			n.stats.LostCut++
			n.mu.Unlock()
			return nil
		}
	}

	lp := n.linkFor(from.addr.Host, to.Host)
	if lp.Loss > 0 && n.rng.Float64() < lp.Loss {
		n.stats.LostLink++
		n.mu.Unlock()
		return nil
	}

	dst := dstHost.ports[to.Port]
	if dst == nil {
		// No listener: silently dropped, like UDP to a closed port.
		n.stats.LostQueue++
		n.mu.Unlock()
		return nil
	}

	vdelay := lp.Delay.Sample(n.rng)
	dg := &Datagram{
		From:    from.addr,
		To:      to,
		Payload: append([]byte(nil), payload...),
		VSent:   from.VNow(),
	}
	dg.VArrive = dg.VSent + vdelay

	copies := 1
	if lp.Dup > 0 && n.rng.Float64() < lp.Dup {
		copies = 2
		n.stats.Duplicated++
	}

	// Reordering: with probability Reorder, stash this datagram and deliver
	// it only after the next datagram on the same link (or at flush).
	key := mkLinkKey(from.addr.Host, to.Host)
	var deliverNow []*Datagram
	if prev := n.pending[key]; prev != nil {
		delete(n.pending, key)
		deliverNow = append(deliverNow, prev)
	}
	if lp.Reorder > 0 && n.rng.Float64() < lp.Reorder && len(deliverNow) == 0 {
		n.stats.Reordered++
		n.pending[key] = dg
		n.mu.Unlock()
		return nil
	}
	realDelay := time.Duration(float64(vdelay) * n.cfg.timeScale)
	n.mu.Unlock()

	for i := 0; i < copies; i++ {
		n.scheduleDelivery(dst, dg, realDelay)
	}
	for _, p := range deliverNow {
		n.scheduleDelivery(dst, p, realDelay)
	}
	return nil
}

// scheduleDelivery delivers dg to dst after realDelay (immediately when 0).
func (n *Network) scheduleDelivery(dst *Endpoint, dg *Datagram, realDelay time.Duration) {
	if realDelay <= 0 {
		n.deliver(dst, dg)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(realDelay, func() {
		n.mu.Lock()
		delete(n.timers, t)
		closed := n.closed
		n.mu.Unlock()
		if !closed {
			n.deliver(dst, dg)
		}
	})
	n.timers[t] = struct{}{}
	n.mu.Unlock()
}

func (n *Network) deliver(dst *Endpoint, dg *Datagram) {
	select {
	case dst.queue <- *dg:
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
	default:
		n.mu.Lock()
		n.stats.LostQueue++
		n.mu.Unlock()
	}
}
