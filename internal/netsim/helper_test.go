package netsim

import "math/rand"

// newTestRand returns a deterministic RNG for table tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(12345)) }
