package netsim

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned by RecvTimeout when the deadline passes.
var ErrTimeout = errors.New("netsim: receive timeout")

// Datagram is one unreliable message in flight. VSent and VArrive are
// virtual timestamps (see the package comment).
type Datagram struct {
	From, To Addr
	Payload  []byte
	VSent    time.Duration
	VArrive  time.Duration
}

// Host is a named machine on the network; dapplets bind ports on it.
type Host struct {
	net      *Network
	name     string
	ports    map[uint16]*Endpoint
	nextPort uint16
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Network returns the network this host belongs to.
func (h *Host) Network() *Network { return h.net }

// Bind creates an endpoint on the given port. It fails with ErrPortInUse
// if the port is taken and ErrClosed if the network is shut down.
func (h *Host) Bind(port uint16) (*Endpoint, error) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.net.closed {
		return nil, ErrClosed
	}
	if _, ok := h.ports[port]; ok {
		return nil, ErrPortInUse
	}
	e := &Endpoint{
		net:    h.net,
		host:   h,
		addr:   Addr{Host: h.name, Port: port},
		queue:  make(chan Datagram, h.net.cfg.queueCap),
		closed: make(chan struct{}),
	}
	h.ports[port] = e
	return e, nil
}

// BindAny binds the next free ephemeral port.
func (h *Host) BindAny() (*Endpoint, error) {
	h.net.mu.Lock()
	var port uint16
	for {
		port = h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 40000
		}
		if _, ok := h.ports[port]; !ok {
			break
		}
	}
	h.net.mu.Unlock()
	return h.Bind(port)
}

func (h *Host) closeAll() {
	h.net.mu.Lock()
	eps := make([]*Endpoint, 0, len(h.ports))
	for _, e := range h.ports {
		eps = append(eps, e)
	}
	h.net.mu.Unlock()
	for _, e := range eps {
		e.Close()
	}
}

// Endpoint is a bound, unreliable datagram socket on a simulated host.
// It is safe for concurrent use.
type Endpoint struct {
	net   *Network
	host  *Host
	addr  Addr
	queue chan Datagram

	closeOnce sync.Once
	closed    chan struct{}

	vmu  sync.Mutex
	vnow time.Duration
}

// Addr returns the endpoint's global address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Send transmits payload to the destination address. Delivery is
// unreliable: the datagram may be dropped, duplicated, reordered or
// arbitrarily delayed according to the link's parameters. Send never
// blocks on the receiver.
func (e *Endpoint) Send(to Addr, payload []byte) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	return e.net.route(e, to, payload)
}

// Recv blocks until a datagram arrives or the endpoint is closed, and
// advances the endpoint's virtual clock to the datagram's arrival stamp.
func (e *Endpoint) Recv() (Datagram, error) {
	select {
	case dg := <-e.queue:
		e.observe(dg.VArrive)
		return dg, nil
	case <-e.closed:
		// Drain anything already queued before reporting closure.
		select {
		case dg := <-e.queue:
			e.observe(dg.VArrive)
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// RecvTimeout is Recv with a real-time deadline.
func (e *Endpoint) RecvTimeout(d time.Duration) (Datagram, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case dg := <-e.queue:
		e.observe(dg.VArrive)
		return dg, nil
	case <-e.closed:
		select {
		case dg := <-e.queue:
			e.observe(dg.VArrive)
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	case <-t.C:
		return Datagram{}, ErrTimeout
	}
}

// VNow returns the endpoint's current virtual time.
func (e *Endpoint) VNow() time.Duration {
	e.vmu.Lock()
	defer e.vmu.Unlock()
	return e.vnow
}

// ChargeCompute advances the endpoint's virtual clock by d, modelling
// local processing time.
func (e *Endpoint) ChargeCompute(d time.Duration) {
	e.vmu.Lock()
	e.vnow += d
	e.vmu.Unlock()
}

func (e *Endpoint) observe(v time.Duration) {
	e.vmu.Lock()
	if v > e.vnow {
		e.vnow = v
	}
	e.vmu.Unlock()
}

// Close releases the endpoint's port and unblocks any pending Recv.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.net.mu.Lock()
		delete(e.host.ports, e.addr.Port)
		e.net.mu.Unlock()
		close(e.closed)
	})
	return nil
}

// Closed reports whether the endpoint has been closed.
func (e *Endpoint) Closed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}
