package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is returned by RecvTimeout when the deadline passes.
var ErrTimeout = errors.New("netsim: receive timeout")

// Datagram is one unreliable message in flight. VSent and VArrive are
// virtual timestamps (see the package comment).
type Datagram struct {
	From, To Addr
	Payload  []byte
	VSent    time.Duration
	VArrive  time.Duration
}

// Host is a named machine on the network; dapplets bind ports on it.
// A host is owned by exactly one delivery shard; its port table is
// guarded by that shard's lock.
type Host struct {
	net      *Network
	shard    *shard
	name     string
	ports    map[uint16]*Endpoint
	nextPort uint16
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Network returns the network this host belongs to.
func (h *Host) Network() *Network { return h.net }

// Bind creates an endpoint on the given port. It fails with ErrPortInUse
// if the port is taken and ErrClosed if the network is shut down.
func (h *Host) Bind(port uint16) (*Endpoint, error) {
	return h.bind(port, h.net.cfg.queueCap)
}

func (h *Host) bind(port uint16, queueCap int) (*Endpoint, error) {
	if queueCap <= 0 {
		queueCap = h.net.cfg.queueCap
	}
	h.shard.mu.Lock()
	defer h.shard.mu.Unlock()
	if h.net.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := h.ports[port]; ok {
		return nil, ErrPortInUse
	}
	e := &Endpoint{
		net:    h.net,
		host:   h,
		addr:   Addr{Host: h.name, Port: port},
		queue:  make(chan Datagram, queueCap),
		closed: make(chan struct{}),
	}
	h.ports[port] = e
	return e, nil
}

// BindAny binds the next free ephemeral port.
func (h *Host) BindAny() (*Endpoint, error) {
	return h.BindAnyQueue(0)
}

// BindAnyQueue is BindAny with a per-endpoint receive queue capacity
// (0 selects the network's configured default). The queue backs each
// endpoint with a preallocated channel, so at swarm scale — hundreds of
// thousands of mostly idle endpoints — the default capacity dominates
// per-dapplet memory; swarm members bind small queues.
func (h *Host) BindAnyQueue(queueCap int) (*Endpoint, error) {
	h.shard.mu.Lock()
	var port uint16
	for {
		port = h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 40000
		}
		if _, ok := h.ports[port]; !ok {
			break
		}
	}
	h.shard.mu.Unlock()
	return h.bind(port, queueCap)
}

func (h *Host) closeAll() {
	h.shard.mu.Lock()
	eps := make([]*Endpoint, 0, len(h.ports))
	for _, e := range h.ports {
		eps = append(eps, e)
	}
	h.shard.mu.Unlock()
	for _, e := range eps {
		e.Close()
	}
}

// Endpoint is a bound, unreliable datagram socket on a simulated host.
// It is safe for concurrent use.
type Endpoint struct {
	net   *Network
	host  *Host
	addr  Addr
	queue chan Datagram

	closeOnce sync.Once
	closed    chan struct{}

	// rcache remembers the last resolved destination so repeat sends to
	// the same peer skip the host/link/port map lookups. A shard version
	// bump (link change, endpoint close) invalidates it.
	rcache atomic.Pointer[routeEntry]

	vnow atomic.Int64 // virtual clock, as time.Duration
}

// Addr returns the endpoint's global address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Send transmits payload to the destination address. Delivery is
// unreliable: the datagram may be dropped, duplicated, reordered or
// arbitrarily delayed according to the link's parameters. Send never
// blocks on the receiver.
func (e *Endpoint) Send(to Addr, payload []byte) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	return e.net.route(e, to, payload)
}

// Recv blocks until a datagram arrives or the endpoint is closed, and
// advances the endpoint's virtual clock to the datagram's arrival stamp.
//
// Ownership: the returned datagram's Payload is an exclusively owned
// copy — the network neither retains nor writes to it after delivery
// (duplicated datagrams are delivered with independent copies), so the
// receiver may retain or mutate it without copying.
//
//wwlint:allow ctxcheck datagram-layer pump with close semantics; the context-first surface is core.Inbox.ReceiveContext
func (e *Endpoint) Recv() (Datagram, error) {
	select {
	case dg := <-e.queue:
		e.observe(dg.VArrive)
		return dg, nil
	case <-e.closed:
		// Drain anything already queued before reporting closure.
		select {
		case dg := <-e.queue:
			e.observe(dg.VArrive)
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// RecvTimeout is Recv with a real-time deadline.
//
//wwlint:allow ctxcheck real-time deadline variant of the datagram pump; the context-first surface is core.Inbox.ReceiveContext
func (e *Endpoint) RecvTimeout(d time.Duration) (Datagram, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case dg := <-e.queue:
		e.observe(dg.VArrive)
		return dg, nil
	case <-e.closed:
		select {
		case dg := <-e.queue:
			e.observe(dg.VArrive)
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	case <-t.C:
		return Datagram{}, ErrTimeout
	}
}

// VNow returns the endpoint's current virtual time.
func (e *Endpoint) VNow() time.Duration {
	return time.Duration(e.vnow.Load())
}

// ChargeCompute advances the endpoint's virtual clock by d, modelling
// local processing time.
func (e *Endpoint) ChargeCompute(d time.Duration) {
	e.vnow.Add(int64(d))
}

// observe advances the clock to v if v is ahead (max-merge, lock-free).
func (e *Endpoint) observe(v time.Duration) {
	for {
		cur := e.vnow.Load()
		if int64(v) <= cur || e.vnow.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// Close releases the endpoint's port and unblocks any pending Recv.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.host.shard.mu.Lock()
		delete(e.host.ports, e.addr.Port)
		// Invalidate route caches pointing at this endpoint.
		e.host.shard.version++
		e.host.shard.mu.Unlock()
		close(e.closed)
	})
	return nil
}

// Closed reports whether the endpoint has been closed.
func (e *Endpoint) Closed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}
