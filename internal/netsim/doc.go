// Package netsim provides a deterministic simulation of a world-wide
// datagram network: named hosts, point-to-point links with configurable
// delay distributions, probabilistic loss, duplication and reordering,
// network partitions, and host crash/restart fault injection (a crashed
// host drops in-flight and inbound datagrams until restarted).
//
// The simulator models the environment the paper's communication layer is
// designed against (§2.2 "Coping with a Varied Network Environment" and
// §3.2 "uses UDP"): datagrams may be dropped, duplicated, reordered, and
// delayed arbitrarily, and delays on one channel are independent of delays
// on other channels.
//
// In addition to (optionally scaled) real-time delivery, every endpoint
// carries a virtual clock: a datagram is stamped with the sender's virtual
// time plus a sampled link delay, and a receiver's clock advances to the
// maximum of its own clock and the datagram's arrival stamp. The maximum
// virtual clock across endpoints therefore measures the critical-path
// latency of a distributed protocol with WAN-scale delays, while the
// simulation itself runs in microseconds of real time.
//
// # Sharded delivery
//
// The delivery engine is sharded so concurrent senders scale with cores:
// hosts are partitioned across WithShards(n) shards (default GOMAXPROCS)
// by hashing the host name, and every routing decision for a datagram —
// partition check, loss, delay sampling, duplication, reordering, timer
// queueing — happens on the destination host's shard, under that shard's
// lock and with that shard's random stream. Sends to hosts on different
// shards share only atomic statistics counters. Time-scaled deliveries
// wait in a per-shard binary heap drained by one goroutine per shard
// rather than in a per-datagram runtime timer.
//
// # Determinism contract
//
// Shard i's random stream is seeded with baseSeed ^ hash(i), so the set
// of streams is a pure function of WithSeed and WithShards. Within one
// shard, fault and delay draws are consumed in the order sends reach the
// shard's lock; runs are therefore reproducible whenever that order is
// reproducible. A single-goroutine workload is deterministic for any
// shard count, and WithShards(1) makes the whole network draw one stream,
// reproducing a run exactly — the same discipline deterministic replay
// in stateless model checking relies on. Concurrent senders contending on
// one shard interleave at the lock, which is the same nondeterminism the
// single-lock design had.
package netsim
