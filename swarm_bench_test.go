package repro

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/swarm"
)

// e11Config scales one swarm benchmark run. The detector interval grows
// with the population so the heartbeat fabric's aggregate send rate
// stays within what one simulation process sustains; the verdict
// latency the report measures scales with it.
func e11Config(n int, seed int64) swarm.Config {
	cfg := swarm.Config{
		N:           n,
		Seed:        seed,
		ChurnRate:   float64(n) / 20,
		SessionRate: float64(n) / 10,
		Duration:    5 * time.Second,
	}
	switch {
	case n >= 100_000:
		cfg.Interval = 4 * time.Second
		cfg.RingWatch = 1
		cfg.ChurnRate = 500
		cfg.SessionRate = 1000
		cfg.Duration = 60 * time.Second
	case n >= 10_000:
		cfg.Interval = time.Second
	default:
		cfg.Interval = 250 * time.Millisecond
	}
	return cfg
}

// reportE11 surfaces the swarm report's headline numbers as benchmark
// metrics.
func reportE11(b *testing.B, rep *swarm.Report) {
	b.Helper()
	churn := rep.Phase("churn")
	b.ReportMetric(churn.MsgsPerSec, "msgs/s")
	b.ReportMetric(churn.HeartbeatsPerSec, "hb/s")
	b.ReportMetric(churn.DirHitRate*100, "dirhit%")
	b.ReportMetric(churn.DetectorNsPerPeerSec, "detns/peer/s")
	b.ReportMetric(rep.HeapBytesPerDapplet, "B/dapplet")
	b.ReportMetric(rep.GoroutinesPerDapplet, "goro/dapplet")
	if rep.DownLatency.Count > 0 {
		b.ReportMetric(rep.DownLatency.P50Ms, "down-p50-ms")
	}
	if rep.TickCost.Speedup > 0 {
		b.ReportMetric(rep.TickCost.Speedup, "wheel-x")
	}
}

// BenchmarkE11Swarm runs the swarm-scale churn harness (E11): a member
// population under continuous join/leave/crash/reincarnate churn and
// directory-routed sessions. The 100k population runs only when
// E11_FULL=1 (it holds 60s of churn and several GB of dapplet state);
// wwbench -exp e11 prints the same report as a table.
func BenchmarkE11Swarm(b *testing.B) {
	sizes := []int{1000, 10_000}
	if os.Getenv("E11_FULL") == "1" {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := swarm.Run(e11Config(n, int64(42+i)))
				if err != nil {
					b.Fatalf("swarm run melted: %v", err)
				}
				if i == b.N-1 {
					reportE11(b, rep)
				}
			}
		})
	}
}

// BenchmarkE13GossipSmoke is the CI-sized gossip-substrate run (E13): a
// few hundred members with verdict quorums, rumor spread, replicated
// directory anti-entropy and partition injection all active. The
// headline metrics are the false-Down count under partitions and the
// post-churn replica convergence lag in gossip rounds.
func BenchmarkE13GossipSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := swarm.Run(swarm.Config{
			N:              200,
			Seed:           int64(13 + i),
			DirShards:      2,
			DirReplicas:    2,
			Initiators:     2,
			Interval:       150 * time.Millisecond,
			Multiplier:     2,
			Quorum:         2,
			GossipInterval: 100 * time.Millisecond,
			PartitionRate:  2,
			PartitionDur:   400 * time.Millisecond,
			ChurnRate:      25,
			SessionRate:    50,
			Duration:       2 * time.Second,
			TickCostPeers:  -1,
		})
		if err != nil {
			b.Fatalf("gossip smoke run melted: %v", err)
		}
		if i == b.N-1 {
			churn := rep.Phase("churn")
			b.ReportMetric(float64(churn.Downs), "downs")
			b.ReportMetric(float64(churn.FalseDowns), "false-downs")
			b.ReportMetric(float64(churn.Partitions), "partitions")
			b.ReportMetric(float64(churn.GossipRounds), "rounds")
			b.ReportMetric(float64(churn.GossipDeltas), "deltas")
			b.ReportMetric(float64(rep.DirConvergeRounds), "conv-rounds")
			if rep.DownLatency.Count > 0 {
				b.ReportMetric(rep.DownLatency.P50Ms, "down-p50-ms")
			}
		}
	}
}

// BenchmarkE11SwarmSmoke is the CI-sized E11 run: a few hundred members
// and a short churn window, just enough to prove the harness end to end
// on a small machine.
func BenchmarkE11SwarmSmoke(b *testing.B) {
	n := 256
	if v := os.Getenv("E11_SMOKE_N"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	for i := 0; i < b.N; i++ {
		rep, err := swarm.Run(swarm.Config{
			N:             n,
			Seed:          int64(7 + i),
			Interval:      100 * time.Millisecond,
			ChurnRate:     40,
			SessionRate:   80,
			Duration:      2 * time.Second,
			TickCostPeers: 2000,
		})
		if err != nil {
			b.Fatalf("swarm smoke run melted: %v", err)
		}
		if i == b.N-1 {
			reportE11(b, rep)
		}
	}
}
