package wwds_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/wwds"
)

// newPair builds two connected dapplets through the public facade.
func newPair(t *testing.T) (*wwds.Network, *wwds.Dapplet, *wwds.Dapplet) {
	t.Helper()
	net := wwds.NewNetwork(wwds.WithSeed(1))
	t.Cleanup(net.Close)
	epA, err := net.Host("a").BindAny()
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Host("b").BindAny()
	if err != nil {
		t.Fatal(err)
	}
	cfg := wwds.WithTransportConfig(wwds.TransportConfig{RTO: 20 * time.Millisecond})
	da := wwds.NewDapplet("a", "t", wwds.NewSimConn(epA), cfg)
	db := wwds.NewDapplet("b", "t", wwds.NewSimConn(epB), cfg)
	t.Cleanup(da.Stop)
	t.Cleanup(db.Stop)
	return net, da, db
}

func TestFacadeMessaging(t *testing.T) {
	_, da, db := newPair(t)
	in := db.Inbox("mail")
	out := da.Outbox("out")
	out.Add(in.Ref())
	if err := out.Send(&wwds.Text{S: "via facade"}); err != nil {
		t.Fatal(err)
	}
	msg, err := in.ReceiveContext(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if msg.(*wwds.Text).S != "via facade" {
		t.Fatalf("got %v", msg)
	}
}

// facadeMsg checks custom message registration through the facade.
type facadeMsg struct {
	N int `json:"n"`
}

func (*facadeMsg) Kind() string { return "wwds_test.facade" }

func TestFacadeCustomMessage(t *testing.T) {
	wwds.RegisterMessage(&facadeMsg{})
	_, da, db := newPair(t)
	in := db.Inbox("in")
	out := da.Outbox("out")
	out.Add(in.Ref())
	if err := out.Send(&facadeMsg{N: 42}); err != nil {
		t.Fatal(err)
	}
	msg, err := in.ReceiveContext(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if msg.(*facadeMsg).N != 42 {
		t.Fatalf("got %+v", msg)
	}
}

func TestFacadeSessionLifecycle(t *testing.T) {
	net := wwds.NewNetwork(wwds.WithSeed(2))
	t.Cleanup(net.Close)
	dir := wwds.NewDirectory()
	cfg := wwds.WithTransportConfig(wwds.TransportConfig{RTO: 20 * time.Millisecond})

	var members []*wwds.Dapplet
	for i := 0; i < 3; i++ {
		ep, err := net.Host(fmt.Sprintf("h%d", i)).BindAny()
		if err != nil {
			t.Fatal(err)
		}
		d := wwds.NewDapplet(fmt.Sprintf("m%d", i), "member", wwds.NewSimConn(ep), cfg)
		t.Cleanup(d.Stop)
		wwds.AttachSessions(d, wwds.SessionPolicy{})
		dir.Register(context.Background(), wwds.DirEntry{Name: d.Name(), Type: "member", Addr: d.Addr()})
		members = append(members, d)
	}
	epI, err := net.Host("hq").BindAny()
	if err != nil {
		t.Fatal(err)
	}
	iniD := wwds.NewDapplet("director", "director", wwds.NewSimConn(epI), cfg)
	t.Cleanup(iniD.Stop)
	ini := wwds.NewInitiator(iniD, dir)

	spec := wwds.SessionSpec{ID: "facade-session", Task: "smoke test"}
	for i := range members {
		spec.Participants = append(spec.Participants,
			wwds.Participant{Name: fmt.Sprintf("m%d", i), Role: "member"})
	}
	spec.Links = append(spec.Links,
		wwds.Link{From: "m0", Outbox: "out", To: "m1", Inbox: "in"},
		wwds.Link{From: "m1", Outbox: "out", To: "m2", Inbox: "in"},
	)
	h, err := ini.Initiate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := members[0].Outbox("out").Send(&wwds.Text{S: "chain"}); err != nil {
		t.Fatal(err)
	}
	if _, err := members[1].Inbox("in").ReceiveContext(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := h.Terminate(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(members[0].Outbox("out").Destinations()); n != 0 {
		t.Fatalf("bindings survived terminate: %d", n)
	}
}

func TestFacadeTokensAndRWLock(t *testing.T) {
	_, da, db := newPair(t)
	alloc := wwds.ServeTokens(da, wwds.TokenBag{"doc": 2})
	mgr := wwds.NewTokenManager(db, alloc.Ref())
	lock := wwds.NewRWLock(mgr, "doc")
	if err := lock.RLock(); err != nil {
		t.Fatal(err)
	}
	if err := lock.RUnlock(); err != nil {
		t.Fatal(err)
	}
	if err := lock.Lock(); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Holds()["doc"]; got != 2 {
		t.Fatalf("holds = %d", got)
	}
	if err := lock.Unlock(); err != nil {
		t.Fatal(err)
	}
	if !alloc.ConservationHolds() {
		t.Fatal("conservation violated")
	}
}

func TestFacadeRPC(t *testing.T) {
	_, da, db := newPair(t)
	ref := wwds.ServeObject(da, "adder", wwds.RPCObject{
		"add2": func(raw json.RawMessage) (any, error) {
			var v int
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, err
			}
			return v + 2, nil
		},
	})
	cli := wwds.NewRPCClient(db)
	var out int
	if err := cli.Call(context.Background(), ref, "add2", 40, &out); err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Fatalf("out = %d", out)
	}
}

func TestFacadeSnapshot(t *testing.T) {
	net, da, db := newPair(t)
	_ = net
	sa := wwds.AttachSnapshots(da, func() any { return "state-a" })
	sb := wwds.AttachSnapshots(db, func() any { return "state-b" })
	members := []wwds.SnapshotMember{
		{Name: "a", Addr: da.Addr()},
		{Name: "b", Addr: db.Addr()},
	}
	sa.SetPeers(members[1:])
	sb.SetPeers(members[:1])

	epC, err := net.Host("c").BindAny()
	if err != nil {
		t.Fatal(err)
	}
	coordD := wwds.NewDapplet("coord", "coord", wwds.NewSimConn(epC),
		wwds.WithTransportConfig(wwds.TransportConfig{RTO: 20 * time.Millisecond}))
	t.Cleanup(coordD.Stop)
	coord := wwds.NewSnapshotCoordinator(coordD, members)
	coord.SetSettle(10 * time.Millisecond)
	g, err := coord.SnapshotMarker(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if len(g.States) != 2 {
		t.Fatalf("states = %d", len(g.States))
	}
}

func TestFacadeSyncAndStore(t *testing.T) {
	_, da, db := newPair(t)
	svc := wwds.ServeBarriers(da)
	cli := wwds.NewSyncClient(db)
	round, err := cli.BarrierAwait(svc.Ref(), "solo", 1)
	if err != nil || round != 0 {
		t.Fatalf("round=%d err=%v", round, err)
	}

	st := wwds.NewStore()
	if err := st.Set("k", 7); err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, err := st.Get("k", &v); !ok || err != nil || v != 7 {
		t.Fatalf("get = %d %v %v", v, ok, err)
	}
	if err := st.TryAcquire("s1", wwds.AccessSet{Write: []string{"k"}}); err != nil {
		t.Fatal(err)
	}

	bar := wwds.NewBarrier(1)
	if bar.Await() != 0 {
		t.Fatal("local barrier round")
	}
	sem := wwds.NewSemaphore(1)
	if err := sem.Acquire(1); err != nil {
		t.Fatal(err)
	}
	sem.Release(1)
}

func TestFacadeClockStamps(t *testing.T) {
	_, da, db := newPair(t)
	in := db.Inbox("in")
	out := da.Outbox("out")
	out.Add(in.Ref())
	if err := out.Send(&wwds.Text{S: "x"}); err != nil {
		t.Fatal(err)
	}
	env, err := in.ReceiveEnvelopeContext(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if db.Clock().Now() <= env.Lamport {
		t.Fatal("snapshot criterion violated through facade")
	}
	s1 := wwds.Stamp{Time: 1, ID: "a"}
	s2 := wwds.Stamp{Time: 1, ID: "b"}
	if !s1.Less(s2) {
		t.Fatal("stamp ordering broken")
	}
}

func TestFacadeDirectoryService(t *testing.T) {
	net := wwds.NewNetwork(wwds.WithSeed(3))
	t.Cleanup(net.Close)
	cfg := wwds.WithTransportConfig(wwds.TransportConfig{RTO: 20 * time.Millisecond})

	newDap := func(host, name string) *wwds.Dapplet {
		ep, err := net.Host(host).BindAny()
		if err != nil {
			t.Fatal(err)
		}
		d := wwds.NewDapplet(name, "t", wwds.NewSimConn(ep), cfg)
		t.Cleanup(d.Stop)
		return d
	}

	// Two shards, one replica each, hosted through the facade.
	var refs [][]wwds.InboxRef
	for s := 0; s < 2; s++ {
		svc := wwds.ServeDirectory(newDap(fmt.Sprintf("dh%d", s), fmt.Sprintf("dir-%d", s)))
		refs = append(refs, []wwds.InboxRef{svc.Ref()})
	}
	cluster, err := wwds.NewDirectoryCluster(refs)
	if err != nil {
		t.Fatal(err)
	}
	cli := wwds.NewDirectoryClient(newDap("hc", "client"), cluster)

	target := newDap("ht", "worker")
	wwds.AttachSessions(target, wwds.SessionPolicy{})
	if err := cli.Register(context.Background(), wwds.DirEntry{Name: "worker", Type: "t", Addr: target.Addr()}); err != nil {
		t.Fatal(err)
	}
	if got, err := cli.MustLookup(context.Background(), "worker"); err != nil || got.Addr != target.Addr() {
		t.Fatalf("lookup = %+v, %v", got, err)
	}

	// The initiator accepts the caching client as its DirResolver.
	var _ wwds.DirResolver = cli
	ini := wwds.NewInitiator(newDap("hq", "director"), cli)
	h, err := ini.Initiate(context.Background(), wwds.SessionSpec{
		ID:           "dir-facade",
		Participants: []wwds.Participant{{Name: "worker", Role: "member"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Terminate(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := cli.Stats(); st.Hits == 0 {
		t.Fatalf("session setup did not use the cache: %+v", st)
	}
}

// testCtx returns a context bounding one receive in these tests.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}
