// Package wwds is the public facade of the world-wide distributed system:
// a single import that exposes the dapplet runtime, inbox/outbox
// communication, sessions, and the service layer (tokens, clocks,
// snapshots, RPC, synchronization) described in Chandy et al., "A
// World-Wide Distributed System Using Java and the Internet" (HPDC 1996).
//
// Quick start (see examples/quickstart for a complete program):
//
//	net := wwds.NewNetwork(wwds.WithSeed(1))
//	ep, _ := net.Host("caltech").BindAny()
//	d := wwds.NewDapplet("mani", "demo", wwds.NewSimConn(ep))
//	in := d.Inbox("mail")
//	...
package wwds

import (
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/failure"
	"repro/internal/gossip"
	"repro/internal/lclock"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/snapshot"
	"repro/internal/state"
	"repro/internal/svc"
	"repro/internal/syncprim"
	"repro/internal/tokens"
	"repro/internal/transport"
	"repro/internal/wire"
)

// --- network simulation ---

// Network is the simulated world-wide datagram network.
type Network = netsim.Network

// Host is a machine on the simulated network.
type Host = netsim.Host

// Addr is a global endpoint address (host and port).
type Addr = netsim.Addr

// DelayModel samples per-datagram link delays.
type DelayModel = netsim.DelayModel

// LinkParams configures a link's delay and fault injection.
type LinkParams = netsim.LinkParams

// NetOption configures a Network.
type NetOption = netsim.Option

// NewNetwork creates a simulated network.
func NewNetwork(opts ...NetOption) *Network { return netsim.New(opts...) }

// Re-exported network options and delay profiles.
var (
	// WithSeed fixes the simulator's random seed for reproducible runs.
	WithSeed = netsim.WithSeed
	// WithShards sets the number of delivery shards (default GOMAXPROCS);
	// WithShards(1) makes a single-threaded run fully deterministic per
	// seed.
	WithShards = netsim.WithShards
	// WithDefaultDelay sets the delay model for unconfigured links.
	WithDefaultDelay = netsim.WithDefaultDelay
	// WithTimeScale sets the real-time to virtual-delay ratio.
	WithTimeScale = netsim.WithTimeScale
	// WithQueueCap sets the per-endpoint receive queue capacity.
	WithQueueCap = netsim.WithQueueCap
	// Constant builds a fixed-delay model.
	Constant = netsim.Constant
	// Uniform builds a uniformly distributed delay model.
	Uniform = netsim.Uniform
	// LAN is the local-area delay profile.
	LAN = netsim.LAN
	// Campus is the campus-network delay profile.
	Campus = netsim.Campus
	// WAN is the wide-area delay profile.
	WAN = netsim.WAN
	// Intercontinental is the paper's Pasadena-to-Australia delay profile.
	Intercontinental = netsim.Intercontinental
)

// --- transport ---

// PacketConn is an unreliable datagram socket (simulated or real UDP).
type PacketConn = transport.PacketConn

// TransportConfig tunes the reliable ordered-delivery layer.
type TransportConfig = transport.Config

// NewSimConn adapts a simulated endpoint to a PacketConn.
var NewSimConn = transport.NewSimConn

// ListenUDP binds a real UDP socket (e.g. "127.0.0.1:0").
var ListenUDP = transport.ListenUDP

// --- messages ---

// Msg is the interface all transmissible messages implement.
type Msg = wire.Msg

// Text is a ready-made plain-text message.
type Text = wire.Text

// InboxRef is the global address of an inbox.
type InboxRef = wire.InboxRef

// Envelope is the delivery metadata around a received message.
type Envelope = wire.Envelope

// RegisterMessage records a message prototype for wire reconstruction.
func RegisterMessage(proto Msg) { wire.Register(proto) }

// --- service framework ---

// The svc layer is the typed, context-first request/response framework
// every control plane (rpc, sessions, directory, failure probes) rides
// on; applications can build their own services on it the same way.
type (
	// SvcHandler serves one request kind on a served inbox.
	SvcHandler = svc.Handler
	// SvcHandlers is the dispatch table of one served inbox.
	SvcHandlers = svc.Handlers
	// SvcCtx carries a request's delivery context into its handler.
	SvcCtx = svc.Ctx
	// SvcServer is one svc-served inbox.
	SvcServer = svc.Server
	// SvcCaller issues context-bounded requests to served inboxes.
	SvcCaller = svc.Caller
	// SvcPending is one transmitted, not-yet-awaited request.
	SvcPending = svc.Pending
	// SvcError is a typed service error whose code survives the wire.
	SvcError = svc.Error
	// SvcCode classifies a service error; codes >= SvcCodeUser are
	// application-defined.
	SvcCode = svc.Code
)

// SvcCodeUser is the first application-defined service error code.
const SvcCodeUser = svc.CodeUser

// ServeSvc consumes an inbox and dispatches its requests to typed
// handlers.
var ServeSvc = svc.Serve

// NewSvcCaller attaches a request caller (private reply inbox plus
// correlation ids) to a dapplet.
var NewSvcCaller = svc.NewCaller

// --- dapplets ---

// Dapplet is a process in a collaborative distributed application.
type Dapplet = core.Dapplet

// Inbox is a globally addressable message queue.
type Inbox = core.Inbox

// Outbox is a message source bound to a set of inboxes.
type Outbox = core.Outbox

// Behavior is the pluggable code of a dapplet type.
type Behavior = core.Behavior

// BehaviorFunc adapts a function to Behavior.
type BehaviorFunc = core.BehaviorFunc

// Registry maps dapplet type names to behaviour factories.
type Registry = core.Registry

// Runtime launches dapplets onto simulated hosts.
type Runtime = core.Runtime

// NewDapplet creates a dapplet on a datagram socket.
var NewDapplet = core.NewDapplet

// NewRegistry creates an empty behaviour registry.
var NewRegistry = core.NewRegistry

// NewRuntime creates a runtime over a network and registry.
var NewRuntime = core.NewRuntime

// WithTransportConfig tunes a dapplet's reliable layer.
var WithTransportConfig = core.WithTransportConfig

// WithStore supplies a persistent state store to a dapplet.
var WithStore = core.WithStore

// --- directory and sessions ---

// Directory is the process-local name -> address registry initiators
// use: the fast-path DirResolver for single-process worlds.
type Directory = directory.Directory

// DirEntry is one directory registration.
type DirEntry = directory.Entry

// DirResolver is the registration/lookup interface shared by the
// process-local Directory and the replicated service's caching client;
// NewInitiator accepts either.
type DirResolver = directory.Resolver

// DirectoryService is one replica of the dapplet-hosted directory,
// served on its dapplet's "@dir" inbox.
type DirectoryService = directory.Service

// DirectoryCluster describes a deployed directory service: prefix
// shards times replicas, addressed by their service inbox refs.
type DirectoryCluster = directory.Cluster

// DirectoryClient resolves names through a replicated directory with a
// version-stamped cache invalidated by pushed watch events, failing over
// to a shard's surviving replicas.
type DirectoryClient = directory.Client

// DirectoryClientStats counts a client's cache hits/misses, failovers
// and evictions.
type DirectoryClientStats = directory.ClientStats

// NewDirectory creates an empty process-local directory.
func NewDirectory() *Directory { return directory.New() }

// ServeDirectory hosts a directory replica on a dapplet.
var ServeDirectory = directory.Serve

// NewDirectoryCluster builds a cluster description from per-shard
// replica service refs.
var NewDirectoryCluster = directory.NewCluster

// NewDirectoryClient attaches a caching directory client to a dapplet.
var NewDirectoryClient = directory.NewClient

// DirectoryClientOption configures a directory client at construction.
type DirectoryClientOption = directory.ClientOption

// WithDirectoryTimeout sets a directory client's per-replica request
// timeout (the failover latency after a replica crash).
var WithDirectoryTimeout = directory.WithClientTimeout

// DirectoryShardOf returns the shard owning a name for a given shard
// count (prefix partitioning of the hashed name space).
var DirectoryShardOf = directory.ShardOf

// BindDirectoryFailures wires a failure detector into a directory
// replica: registered dapplets are watched, a Down verdict expires their
// entries, and a reincarnation's heartbeat re-registers them at the new
// address.
var BindDirectoryFailures = failure.BindDirectory

// Session types: specs, participants, links, the initiator and the
// per-dapplet service.
type (
	// SessionSpec describes a session to initiate.
	SessionSpec = session.Spec
	// Participant is one session member.
	Participant = session.Participant
	// Link is one directed channel in a session spec.
	Link = session.Link
	// SessionPolicy configures ACLs and join/leave callbacks.
	SessionPolicy = session.Policy
	// SessionService is the per-dapplet session participant.
	SessionService = session.Service
	// SessionHandle is the initiator's view of a live session.
	SessionHandle = session.Handle
	// Initiator links dapplets into sessions.
	Initiator = session.Initiator
	// Membership is a dapplet's live participation in a session.
	Membership = session.Membership
	// SessionTreeSpec selects relay-tree multicast for a session: every
	// participant gets the named outbox bound to the session's spanning
	// tree and the named inbox created to receive broadcasts.
	SessionTreeSpec = session.TreeSpec
)

// AttachSessions equips a dapplet with the session service.
var AttachSessions = session.Attach

// NewInitiator creates a session initiator.
var NewInitiator = session.NewInitiator

// Relay multicast (see internal/relay): per-session fanout-k spanning
// trees so one Outbox.Send reaches any group size at O(k) sender cost,
// with every participant re-forwarding the marshal-once bytes to its
// own tree neighbors.
type (
	// Relay is the per-dapplet tree-multicast forwarder.
	Relay = relay.Relay
	// RelayTree is a fanout-k spanning tree over a session roster.
	RelayTree = relay.Tree
	// RelayMember is one participant in a session tree.
	RelayMember = relay.Member
	// RelayBinding installs one session's tree at a participant.
	RelayBinding = relay.Binding
	// RelayStats counts a relay's forwarding and delivery activity.
	RelayStats = relay.Stats
)

// AttachRelay equips a dapplet with the relay-multicast service
// (session.Attach does this automatically for tree sessions).
var AttachRelay = relay.Attach

// NewRelayTree builds the deterministic heap tree over a roster.
var NewRelayTree = relay.NewTree

// DefaultRelayFanout is the tree fanout used when a session's tree spec
// does not specify one.
const DefaultRelayFanout = relay.DefaultFanout

// --- persistent state ---

// Store is a persistent variable store with session access control.
type Store = state.Store

// AccessSet declares the variables a session reads and writes.
type AccessSet = state.AccessSet

// NewStore creates an in-memory store.
var NewStore = state.NewStore

// OpenStore creates a file-backed store.
var OpenStore = state.Open

// --- services ---

// Token service: conserved coloured tokens with deadlock detection.
type (
	// TokenColor is a resource type.
	TokenColor = tokens.Color
	// TokenBag is a multiset of tokens by colour.
	TokenBag = tokens.Bag
	// TokenAllocator owns a session's token population.
	TokenAllocator = tokens.Allocator
	// TokenManager is the per-dapplet token manager.
	TokenManager = tokens.Manager
	// RWLock is the reader/writer protocol over tokens.
	RWLock = tokens.RWLock
)

// ServeTokens starts a token allocator on a dapplet.
var ServeTokens = tokens.Serve

// NewTokenManager attaches a token manager to a dapplet.
var NewTokenManager = tokens.NewManager

// NewRWLock builds a reader/writer lock over a colour.
var NewRWLock = tokens.NewRWLock

// Logical clocks.
type (
	// Clock is a Lamport clock satisfying the global snapshot criterion.
	Clock = lclock.Clock
	// Stamp is a totally ordered logical timestamp.
	Stamp = lclock.Stamp
)

// Snapshots and checkpoints.
type (
	// SnapshotService makes a dapplet snapshot-capable.
	SnapshotService = snapshot.Service
	// SnapshotCoordinator assembles global snapshots.
	SnapshotCoordinator = snapshot.Coordinator
	// SnapshotMember identifies a snapshot participant.
	SnapshotMember = snapshot.Member
	// GlobalSnapshot is an assembled snapshot with a consistency check.
	GlobalSnapshot = snapshot.Global
	// Checkpoint is a participant's durable local checkpoint record.
	Checkpoint = snapshot.Checkpoint
	// ChannelMsg is one in-flight message captured as channel state in a
	// checkpoint, replayable into a recovering dapplet's inboxes.
	ChannelMsg = snapshot.ChannelMsg
)

// AttachSnapshots equips a dapplet with the snapshot service.
var AttachSnapshots = snapshot.Attach

// NewSnapshotCoordinator creates a snapshot coordinator.
var NewSnapshotCoordinator = snapshot.NewCoordinator

// LastCheckpoint reads the most recent durable local checkpoint from a
// store that survived a crash.
var LastCheckpoint = snapshot.LastCheckpoint

// ReplayChannels re-queues the channel-state messages of a dapplet's
// last durable checkpoint into its inboxes after a crash-restart.
var ReplayChannels = snapshot.ReplayChannels

// Failure detection (see internal/failure): BFD-style heartbeats with
// per-peer adaptive timeouts and a suspect -> down state machine.
type (
	// FailureDetector heartbeats and monitors a dapplet's peers.
	FailureDetector = failure.Detector
	// FailureConfig tunes a detector (interval, multiplier, incarnation).
	FailureConfig = failure.Config
	// FailureEvent is one verdict change for a watched peer.
	FailureEvent = failure.Event
	// PeerState is a watcher's verdict about one peer.
	PeerState = failure.State
	// FailureStats counts explicit heartbeats sent and application
	// frames accepted as implicit liveness (heartbeat piggybacking).
	FailureStats = failure.Stats
)

// Peer liveness verdicts, in escalation order.
const (
	// PeerUp means heartbeats are arriving within the detection time.
	PeerUp = failure.Up
	// PeerSuspect means one detection time passed without a heartbeat.
	PeerSuspect = failure.Suspect
	// PeerDown means the watcher committed to the failure verdict.
	PeerDown = failure.Down
)

// AttachFailureDetector equips a dapplet with a heartbeat failure
// detector.
var AttachFailureDetector = failure.Attach

// BindSessionFailures forwards detector verdicts into a dapplet's
// session service, so Membership.LivePeers reflects peer liveness.
var BindSessionFailures = failure.BindSession

// AutoRepairSessions subscribes a session handle to a detector: a Down
// verdict for a session participant starts a repair thread that retries
// Reincarnate until the roster points at the peer's new incarnation.
var AutoRepairSessions = failure.AutoRepair

// Gossip substrate (see internal/gossip): periodic anti-entropy pulls
// and rumor mongering over one svc-served protocol. The replicated
// directory's convergence and the failure detector's verdict quorums
// both ride it.
type (
	// GossipEngine runs a dapplet's gossip rounds and rumor forwarding.
	GossipEngine = gossip.Engine
	// GossipConfig tunes an engine (interval, fanout, TTL, dedup window).
	GossipConfig = gossip.Config
	// GossipExchanger is one topic's anti-entropy contract: digest out,
	// delta back, delta applied.
	GossipExchanger = gossip.Exchanger
	// GossipRumorHandler receives each new rumor on a topic exactly once.
	GossipRumorHandler = gossip.RumorHandler
	// GossipStats counts rounds, pulls, deltas and rumor traffic.
	GossipStats = gossip.Stats
)

// AttachGossip equips a dapplet with a gossip engine.
var AttachGossip = gossip.Attach

// GossipRef addresses a peer engine's rumor inbox.
var GossipRef = gossip.Ref

// DirectoryGossipTopic is the anti-entropy topic directory replicas
// exchange their version-vector digests on.
const DirectoryGossipTopic = directory.GossipTopic

// BindDirectoryGossip registers a directory replica's anti-entropy
// exchanger on an engine, so replicas of the same shard reconcile
// missed writes (including tombstones) within bounded gossip rounds.
var BindDirectoryGossip = directory.BindGossip

// WithDirectoryRotateBack makes a directory client retry its preferred
// replica after the given backoff instead of pinning to a failover
// target forever.
var WithDirectoryRotateBack = directory.WithRotateBack

// RPC over inboxes: global pointers, async and sync calls.
type (
	// RPCRef is a global pointer to a served object.
	RPCRef = rpc.Ref
	// RPCObject is a set of named methods.
	RPCObject = rpc.Object
	// RPCClient issues calls to remote objects.
	RPCClient = rpc.Client
)

// ServeObject associates an object with an inbox and a thread.
var ServeObject = rpc.Serve

// NewRPCClient attaches an RPC client to a dapplet.
var NewRPCClient = rpc.NewClient

// Synchronization constructs.
type (
	// Barrier is an intra-dapplet cyclic barrier.
	Barrier = syncprim.Barrier
	// Semaphore is an intra-dapplet FIFO counting semaphore.
	Semaphore = syncprim.Semaphore
	// BarrierService coordinates distributed barriers.
	BarrierService = syncprim.BarrierService
	// SyncClient issues distributed synchronization operations.
	SyncClient = syncprim.Client
	// DistSemaphore is a token-backed distributed semaphore.
	DistSemaphore = syncprim.DistSemaphore
)

// NewBarrier creates an intra-dapplet barrier.
var NewBarrier = syncprim.NewBarrier

// NewSemaphore creates an intra-dapplet semaphore.
var NewSemaphore = syncprim.NewSemaphore

// ServeBarriers starts a distributed barrier coordinator.
var ServeBarriers = syncprim.ServeBarriers

// NewSyncClient attaches a distributed synchronization client.
var NewSyncClient = syncprim.NewClient

// NewDistSemaphore wraps a token manager as a semaphore.
var NewDistSemaphore = syncprim.NewDistSemaphore
