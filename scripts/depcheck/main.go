// Command depcheck fails the build on new calls to the deprecated
// timeout-era methods outside the packages that own them. The svc
// redesign threaded context.Context through every blocking public call
// (Inbox.ReceiveContext, rpc.Client.Call, Initiator.Initiate,
// directory.Client lookups); the old timeout methods remain only as
// deprecated wrappers, and this gate keeps new code off them. It runs in
// CI next to scripts/doccheck.
//
// Rules:
//   - ReceiveTimeout / ReceiveEnvelopeTimeout calls are flagged outside
//     internal/core (their owner), CallTimeout outside internal/rpc.
//   - SetTimeout is ambiguous (snapshot and calendar have legitimate
//     knobs of the same name), so it is flagged only in files that
//     import repro/internal/session, repro/internal/directory or
//     repro/wwds — the packages whose SetTimeout is deprecated — and
//     outside those owners.
//   - A call whose line carries a "//depcheck:allow <reason>" comment is
//     exempt; use it for same-named methods of other types.
//
// Usage: go run ./scripts/depcheck <root-dir>
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// owners maps each deprecated method to the package directories allowed
// to keep calling it (the owner's implementation, wrappers and tests).
var owners = map[string][]string{
	"ReceiveTimeout":         {"internal/core"},
	"ReceiveEnvelopeTimeout": {"internal/core"},
	"CallTimeout":            {"internal/rpc"},
	"SetTimeout":             {"internal/session", "internal/directory"},
}

// setTimeoutImports are the import paths whose presence makes a bare
// SetTimeout call suspicious.
var setTimeoutImports = []string{
	"repro/internal/session",
	"repro/internal/directory",
	"repro/wwds",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		return checkFile(root, path, &bad)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "depcheck: %d call(s) to deprecated timeout methods (use the context-first API; see DESIGN.md \"Service framework\")\n", bad)
		os.Exit(1)
	}
}

func checkFile(root, path string, bad *int) error {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	dir := filepath.ToSlash(filepath.Dir(rel))
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return err
	}
	importsSuspect := false
	for _, imp := range f.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		for _, s := range setTimeoutImports {
			if p == s {
				importsSuspect = true
			}
		}
	}
	// Lines carrying a depcheck:allow comment are exempt.
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "depcheck:allow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		ownerDirs, deprecated := owners[name]
		if !deprecated {
			return true
		}
		if name == "SetTimeout" && !importsSuspect {
			return true
		}
		for _, od := range ownerDirs {
			if dir == od {
				return true
			}
		}
		pos := fset.Position(call.Pos())
		if allowed[pos.Line] {
			return true
		}
		*bad++
		fmt.Printf("%s:%d: call to deprecated %s outside its package (use the context-first API)\n", rel, pos.Line, name)
		return true
	})
	return nil
}
