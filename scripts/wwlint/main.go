// Command wwlint runs the repository's static-analysis suite (see
// internal/lint and DESIGN.md "Static analysis") as one pass: the
// determinism, lockcheck, ctxcheck, goleak, wirecheck, doccheck and
// depcheck analyzers over every package matched by the given patterns.
// It is the single lint gate CI runs:
//
//	go run ./scripts/wwlint ./...
//
// Flags:
//
//	-only a,b    run only the named analyzers
//	-list        print the analyzer table and exit
//
// Exit status: 0 clean, 1 diagnostics found, 2 load or internal error.
// Suppress a finding with //wwlint:allow <analyzer> <reason> on (or
// directly above) the offending line, or //wwlint:allowfile for a whole
// file; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "print the analyzer table and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = lint.ByName(strings.Split(*only, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "wwlint: unknown analyzer in -only=%s (use -list)\n", *only)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	world, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(world, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
