// Command doccheck enforces the repository's godoc discipline: every
// exported top-level symbol in the packages given as arguments must
// carry a doc comment. It is the missing-godoc gate CI runs (see
// .github/workflows/ci.yml) so the documentation audit cannot rot; it
// implements the same core rule as revive's `exported` check without
// pulling a tool dependency into the build.
//
// Rules:
//   - Exported funcs, types, vars and consts need a doc comment.
//   - In a grouped declaration with multiple specs, each exported spec
//     needs its own comment (a block comment alone is not enough).
//   - Methods are checked only when their receiver type is exported,
//     matching revive: implementing an interface on an unexported type
//     does not force boilerplate comments.
//
// Usage: go run ./scripts/doccheck <package-dir>...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		if err := checkDir(dir, &bad); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d missing doc comment(s)\n", bad)
		os.Exit(1)
	}
}

func checkDir(dir string, bad *int) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		for path, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(fset, path, decl, bad)
			}
		}
	}
	return nil
}

func checkDecl(fset *token.FileSet, path string, decl ast.Decl, bad *int) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		report(fset, path, d.Pos(), "func "+d.Name.Name, bad)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			// A lone spec may ride on the block comment; in a group,
			// every exported spec needs its own.
			grouped := len(d.Specs) > 1
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && (grouped || d.Doc == nil) && s.Doc == nil && s.Comment == nil {
					report(fset, path, s.Pos(), "type "+s.Name.Name, bad)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && (grouped || d.Doc == nil) && s.Doc == nil && s.Comment == nil {
						report(fset, path, s.Pos(), "var/const "+n.Name, bad)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func report(fset *token.FileSet, path string, pos token.Pos, what string, bad *int) {
	*bad++
	fmt.Printf("%s:%d: missing doc comment on %s\n", path, fset.Position(pos).Line, what)
}
