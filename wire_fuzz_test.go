// Round-trip conformance for the wire codec over every registered message
// kind. This file lives in the root package because the test binary links
// every message-bearing package (via bench_test.go's imports), so the
// process-wide kind registry here is the full one a real deployment has.
package repro

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// kindsEnvelope builds a representative envelope around a body.
func kindsEnvelope(body wire.Msg) *wire.Envelope {
	return &wire.Envelope{
		To:          wire.InboxRef{Dapplet: netsim.Addr{Host: "caltech", Port: 4021}, Inbox: "students"},
		FromDapplet: netsim.Addr{Host: "anu.au", Port: 999},
		FromOutbox:  "out",
		Session:     "s-42",
		Lamport:     123456789,
		Body:        body,
	}
}

// populateValue fills v with deterministic non-zero data (seeded by n) so
// round-trip tests exercise every field of every message type: a codec
// that silently drops a field cannot pass against a populated value.
func populateValue(v reflect.Value, n int) {
	switch v.Kind() {
	case reflect.String:
		v.SetString(fmt.Sprintf("v%d", n))
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(n)*7 - 3)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(n)*7 + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(n) + 0.5)
	case reflect.Slice:
		if v.Type() == reflect.TypeOf(json.RawMessage(nil)) {
			// Must be valid JSON for the JSON fallback path.
			v.SetBytes([]byte(fmt.Sprintf(`{"p":%d}`, n)))
			return
		}
		s := reflect.MakeSlice(v.Type(), 2, 2)
		populateValue(s.Index(0), n)
		populateValue(s.Index(1), n+1)
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		populateValue(k, n)
		e := reflect.New(v.Type().Elem()).Elem()
		populateValue(e, n+1)
		m.SetMapIndex(k, e)
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		populateValue(p.Elem(), n)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				populateValue(f, n+i)
			}
		}
	}
}

// TestEnvelopeRoundTripAllKinds asserts, for every registered kind, that
// binary-encode → decode is identity, and that the JSON fallback and the
// binary path decode to the same message — for both the zero value and a
// fully populated value of each kind.
func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	kinds := wire.Kinds()
	if len(kinds) < 20 {
		t.Fatalf("only %d kinds registered; message packages not linked?", len(kinds))
	}
	for _, kind := range kinds {
		for _, populated := range []bool{false, true} {
			m, err := wire.NewOf(kind)
			if err != nil {
				t.Fatal(err)
			}
			if populated {
				populateValue(reflect.ValueOf(m).Elem(), 3)
			}
			env := kindsEnvelope(m)
			roundTripKind(t, kind, m, env)
		}
	}
}

func roundTripKind(t *testing.T, kind string, m wire.Msg, env *wire.Envelope) {
	t.Helper()
	bin, err := wire.MarshalEnvelope(env)
	if err != nil {
		t.Fatalf("%s: binary marshal: %v", kind, err)
	}
	fromBin, err := wire.UnmarshalEnvelope(bin)
	if err != nil {
		t.Fatalf("%s: binary unmarshal: %v", kind, err)
	}
	if _, isBinary := m.(wire.BinaryMessage); isBinary {
		// Binary fast-path kinds must round-trip to strict identity.
		if !reflect.DeepEqual(fromBin, env) {
			t.Fatalf("%s: binary round trip not identity:\n got %#v\nwant %#v", kind, fromBin, env)
		}
	} else {
		// JSON-fallback kinds may canonicalize on the first trip
		// (e.g. a nil json.RawMessage decodes as "null"); the second
		// trip must be a fixed point.
		bin2, err := wire.MarshalEnvelope(fromBin)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", kind, err)
		}
		again, err := wire.UnmarshalEnvelope(bin2)
		if err != nil {
			t.Fatalf("%s: re-unmarshal: %v", kind, err)
		}
		if !reflect.DeepEqual(again, fromBin) {
			t.Fatalf("%s: round trip not a fixed point:\n got %#v\nwant %#v", kind, again, fromBin)
		}
	}

	js, err := wire.MarshalEnvelopeJSON(env)
	if err != nil {
		t.Fatalf("%s: json marshal: %v", kind, err)
	}
	fromJSON, err := wire.UnmarshalEnvelope(js)
	if err != nil {
		t.Fatalf("%s: json unmarshal: %v", kind, err)
	}
	if !reflect.DeepEqual(fromJSON.Body, fromBin.Body) {
		t.Fatalf("%s: json and binary paths decode different bodies:\n json %#v\n bin  %#v",
			kind, fromJSON.Body, fromBin.Body)
	}
}

// FuzzEnvelopeRoundTrip feeds arbitrary bytes to the envelope decoder
// (which sniffs binary vs JSON frames) and asserts that anything that
// decodes re-encodes to a frame that decodes to the same envelope.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	for _, kind := range wire.Kinds() {
		m, err := wire.NewOf(kind)
		if err != nil {
			f.Fatal(err)
		}
		env := kindsEnvelope(m)
		if bin, err := wire.MarshalEnvelope(env); err == nil {
			f.Add(bin)
		}
		if js, err := wire.MarshalEnvelopeJSON(env); err == nil {
			f.Add(js)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env1, err := wire.UnmarshalEnvelope(data)
		if err != nil {
			return // malformed input must only error, never panic
		}
		// One re-encode round may canonicalize a JSON-fallback body
		// (e.g. a nil json.RawMessage decodes as "null"); after that the
		// binary round trip must be a fixed point.
		bin1, err := wire.MarshalEnvelope(env1)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v (%#v)", err, env1)
		}
		env2, err := wire.UnmarshalEnvelope(bin1)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		bin2, err := wire.MarshalEnvelope(env2)
		if err != nil {
			t.Fatalf("canonical envelope does not re-encode: %v", err)
		}
		env3, err := wire.UnmarshalEnvelope(bin2)
		if err != nil {
			t.Fatalf("canonical envelope does not decode: %v", err)
		}
		if !reflect.DeepEqual(env2, env3) {
			t.Fatalf("round trip is not a fixed point:\n was %#v\n now %#v", env2, env3)
		}
	})
}
