// Command calendard runs a calendar scheduling session over REAL UDP
// sockets on the loopback interface — the paper's actual deployment
// substrate ("the initial implementation uses UDP", §3.2) — rather than
// the simulator. Every dapplet binds its own 127.0.0.1 port; the reliable
// ordered-delivery layer, sessions and the scheduling protocol are
// identical to the simulated runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	members := flag.Int("members", 5, "committee size")
	slots := flag.Int("slots", 80, "scheduling horizon in slots")
	busy := flag.Float64("busy", 0.5, "probability a slot is already booked")
	seed := flag.Int64("seed", 1, "calendar generation seed")
	flag.Parse()

	udp := func() transport.PacketConn {
		pc, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatalf("bind UDP: %v", err)
		}
		return pc
	}

	rng := rand.New(rand.NewSource(*seed))
	common := rng.Intn(*slots)

	// The directory itself is a dapplet-hosted service over UDP; every
	// member registers through the coordinator's caching client, and
	// session setup resolves addresses the same way.
	dirD := core.NewDapplet("directory", "directory", udp())
	dirSvc := directory.Serve(dirD)
	cluster, err := directory.NewCluster([][]wire.InboxRef{{dirSvc.Ref()}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory service listening on udp://%s\n", dirD.Addr())

	coord := core.NewDapplet("coordinator", "coordinator", udp())
	session.Attach(coord, session.Policy{})
	dir := directory.NewClient(coord, cluster)
	if err := dir.Register(context.Background(), directory.Entry{Name: "coordinator", Type: "coordinator", Addr: coord.Addr()}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator listening on udp://%s\n\n", coord.Addr())

	var names []string
	var dapplets []*core.Dapplet
	behaviors := make(map[string]*calendar.MemberBehavior)
	for i := 0; i < *members; i++ {
		name := fmt.Sprintf("member-%d", i)
		var busySlots []int
		for s := 0; s < *slots; s++ {
			if s != common && rng.Float64() < *busy {
				busySlots = append(busySlots, s)
			}
		}
		mb := calendar.NewMember(*slots, busySlots)
		d := core.NewDapplet(name, "calendar", udp())
		if err := mb.Start(d); err != nil {
			log.Fatal(err)
		}
		session.Attach(d, session.Policy{})
		if err := dir.Register(context.Background(), directory.Entry{Name: name, Type: "calendar", Addr: d.Addr()}); err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
		dapplets = append(dapplets, d)
		behaviors[name] = mb
		fmt.Printf("%s listening on udp://%s\n", name, d.Addr())
	}

	ini := session.NewInitiator(coord, dir)
	h, err := ini.Initiate(context.Background(), calendar.FlatSpec("udp-calendar", "coordinator", names))
	if err != nil {
		log.Fatalf("session setup: %v", err)
	}
	fmt.Printf("session %q established over UDP with %d participants\n",
		h.ID(), len(h.Participants()))

	sched := calendar.NewHeadScheduler(coord, *slots)
	start := time.Now()
	res, err := sched.Schedule(context.Background(), 0, *slots, *slots/4)
	if err != nil {
		log.Fatalf("scheduling: %v", err)
	}
	fmt.Printf("meeting booked at slot %d in %v (rounds=%d proposals=%d calls=%d)\n",
		res.Slot, time.Since(start).Round(time.Microsecond), res.Rounds, res.Proposals, res.Calls)

	for _, name := range names {
		if !behaviors[name].Busy(res.Slot) {
			log.Fatalf("%s did not book the slot", name)
		}
	}
	fmt.Println("all calendars booked consistently")

	if err := h.Terminate(context.Background()); err != nil {
		log.Fatalf("terminate: %v", err)
	}
	fmt.Println("session terminated; dapplets unlinked")

	st := dir.Stats()
	fmt.Printf("directory client: %d cache hits, %d misses over UDP\n", st.Hits, st.Misses)

	for _, d := range dapplets {
		d.Stop()
	}
	coord.Stop()
	dirD.Stop()
}
