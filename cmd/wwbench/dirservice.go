package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/directory"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// e10Cluster hosts a shards x replicas directory service on a network,
// replica r of shard s on host "dir<s>-<r>".
func e10Cluster(net *netsim.Network, shards, replicas int) (*directory.Cluster, [][]*directory.Service) {
	refs := make([][]wire.InboxRef, shards)
	svcs := make([][]*directory.Service, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			name := fmt.Sprintf("dir%d-%d", s, r)
			svc := directory.Serve(newDapplet(net, name, name))
			refs[s] = append(refs[s], svc.Ref())
			svcs[s] = append(svcs[s], svc)
		}
	}
	cl, err := directory.NewCluster(refs)
	if err != nil {
		log.Fatal(err)
	}
	return cl, svcs
}

// runE10 characterizes the replicated directory service. The first table
// sweeps the shard/replica topology and measures lookup throughput for
// cached (client cache hit) and uncached (full round trip to the owning
// shard) resolution, plus the registration fan-out cost. The second
// crashes a replica under load: lookups keep succeeding through the
// shard's surviving replica, and a failure detector bound to a replica
// expires a dead registrant's entry with no manual removal.
func runE10() {
	const (
		names   = 64
		lookups = 5000
	)
	row("shards", "replicas", "mode", "lookups/s(wall)", "ns/lookup", "hit-rate")
	for _, cfg := range []struct{ shards, replicas int }{{1, 1}, {2, 2}, {4, 2}, {8, 2}} {
		for _, mode := range []string{"cached", "uncached"} {
			net := newNet(12)
			cl, _ := e10Cluster(net, cfg.shards, cfg.replicas)
			cli := directory.NewClient(newDapplet(net, "hq", "dirclient"), cl)
			for i := 0; i < names; i++ {
				name := fmt.Sprintf("dapplet-%d", i)
				e := directory.Entry{Name: name, Type: "bench", Addr: netsim.Addr{Host: "h", Port: uint16(i + 1)}}
				if err := cli.Register(context.Background(), e); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			for i := 0; i < lookups; i++ {
				name := fmt.Sprintf("dapplet-%d", i%names)
				if mode == "uncached" {
					cli.Invalidate(name)
				}
				if _, ok := cli.Lookup(context.Background(), name); !ok {
					log.Fatalf("e10: lookup %s failed", name)
				}
			}
			dur := time.Since(start)
			st := cli.Stats()
			hitRate := float64(st.Hits) / float64(st.Hits+st.Misses)
			row(cfg.shards, cfg.replicas, mode,
				int(float64(lookups)/dur.Seconds()),
				int(dur.Nanoseconds()/lookups),
				fmt.Sprintf("%.2f", hitRate))
			net.Close()
		}
	}

	fmt.Println()
	row("event", "result")
	// Replica crash: the preferred replica of the only shard dies; an
	// uncached lookup pays one detection timeout, fails over, and every
	// lookup after it resolves from the survivor.
	net := newNet(13)
	cl, _ := e10Cluster(net, 1, 2)
	cli := directory.NewClient(newDapplet(net, "hq", "dirclient"), cl,
		directory.WithClientTimeout(100*time.Millisecond))
	if err := cli.Register(context.Background(), directory.Entry{Name: "svc", Type: "bench", Addr: netsim.Addr{Host: "h", Port: 1}}); err != nil {
		log.Fatal(err)
	}
	net.Crash("dir0-0")
	cli.FlushCache()
	start := time.Now()
	if _, err := cli.MustLookup(context.Background(), "svc"); err != nil {
		log.Fatalf("e10: lookup after replica crash: %v", err)
	}
	first := time.Since(start)
	start = time.Now()
	const after = 1000
	for i := 0; i < after; i++ {
		cli.Invalidate("svc")
		if _, ok := cli.Lookup(context.Background(), "svc"); !ok {
			log.Fatal("e10: survivor lookup failed")
		}
	}
	row("replica-crash failover", fmt.Sprintf("first lookup %v (1 timeout), then %v/lookup via survivor, failovers=%d",
		first.Round(time.Millisecond), (time.Since(start)/after).Round(time.Microsecond), cli.Stats().Failovers))
	net.Close()

	// Failure-driven expiry: a replica's own detector declares a dead
	// registrant Down and expires its entry — no Remove anywhere.
	net = newNet(14)
	svcD := newDapplet(net, "hs", "dir0-0")
	svc := directory.Serve(svcD)
	det := failure.Attach(svcD, failure.Config{Interval: 10 * time.Millisecond, Multiplier: 2})
	failure.BindDirectory(det, svc)
	worker := newDapplet(net, "hw", "worker")
	wdet := failure.Attach(worker, failure.Config{Interval: 10 * time.Millisecond, Multiplier: 2})
	wdet.Watch(svcD.Name(), svcD.Addr())
	svc.Register(directory.Entry{Name: "worker", Type: "node", Addr: worker.Addr()})
	time.Sleep(50 * time.Millisecond) // establish the heartbeat rhythm
	net.Crash("hw")
	start = time.Now()
	for {
		if _, _, ok := svc.Lookup("worker"); !ok {
			break
		}
		if time.Since(start) > time.Minute {
			log.Fatal("e10: dead registrant's entry never expired")
		}
		time.Sleep(time.Millisecond)
	}
	row("failure-driven expiry", fmt.Sprintf("dead dapplet's entry expired %v after crash (no manual Remove)",
		time.Since(start).Round(time.Millisecond)))
	net.Close()
}
