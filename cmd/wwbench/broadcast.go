package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

var (
	flagE14Sizes = flag.String("e14sizes", "100,1000,10000",
		"E14 group sizes (comma-separated participant counts) for the flat-vs-tree broadcast A/B")
	flagE14Msgs = flag.Int("e14msgs", 20,
		"E14 broadcasts per run from the origin")
	flagE14Fanout = flag.Int("e14fanout", 0,
		"E14 tree fanout k (0 = relay default)")
	flagE14Payload = flag.Int("e14payload", 64,
		"E14 broadcast payload size in bytes")
	flagE14Out = flag.String("e14out", "",
		"write the full E14 report (both modes at every size) as JSON to this path")
)

// e14Run is one (size, mode) cell of the E14 report.
type e14Run struct {
	Mode string `json:"mode"`
	*scenario.BroadcastResult
}

// runE14 drives the large-group broadcast A/B: at each -e14sizes group
// size, one origin broadcasts -e14msgs payloads first over a flat
// per-destination fan-out, then over the relay spanning tree, and the
// table compares sender cost per message, root wire bytes, delivery
// latency and peak transport queue depth. The run fails loudly on any
// delivery loss or misordering. -e14out dumps every cell as JSON.
func runE14() {
	var sizes []int
	for _, s := range strings.Split(*flagE14Sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			log.Fatalf("bad -e14sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}

	var report []e14Run
	row("n", "mode", "fanout", "depth", "setup-ms", "send-ns/msg", "root-KB", "p50-ms", "p99-ms", "maxq", "delivered")
	for _, n := range sizes {
		msgs := *flagE14Msgs
		if n >= 10_000 && msgs > 10 {
			msgs = 10 // the flat baseline is O(N*M) at the origin; keep the 10k cell tractable
		}
		// Session setup ships the full roster in every invite — O(N²)
		// wire bytes — so the 10k cells need ~20 (flat) and ~5 (tree)
		// minutes of setup on a 1-CPU container (see ROADMAP: roster
		// compression).
		deadline := 10 * time.Minute
		if n >= 5_000 {
			deadline = time.Hour
		}
		var flat, tree *scenario.BroadcastResult
		for _, mode := range []bool{false, true} {
			res, err := scenario.RunBroadcast(context.Background(), scenario.BroadcastOptions{
				Participants: n,
				Messages:     msgs,
				PayloadBytes: *flagE14Payload,
				Fanout:       *flagE14Fanout,
				Tree:         mode,
				Seed:         seedOr(14),
				Shards:       *flagShards,
				Deadline:     deadline,
			})
			if err != nil {
				log.Fatalf("e14 n=%d tree=%v: %v", n, mode, err)
			}
			name := "flat"
			if mode {
				name = "tree"
				tree = res
			} else {
				flat = res
			}
			report = append(report, e14Run{Mode: name, BroadcastResult: res})
			row(n, name, res.Fanout, res.Depth,
				fmt.Sprintf("%.1f", float64(res.Setup.Microseconds())/1000),
				fmt.Sprintf("%.0f", res.SenderNsPerMsg),
				fmt.Sprintf("%.1f", float64(res.RootBytesOut)/1024),
				fmt.Sprintf("%.2f", float64(res.P50.Microseconds())/1000),
				fmt.Sprintf("%.2f", float64(res.P99.Microseconds())/1000),
				res.MaxQueueDepth, res.Delivered)
		}
		row("", fmt.Sprintf("tree vs flat: %.1fx sender ns/msg, %.1fx root bytes",
			flat.SenderNsPerMsg/tree.SenderNsPerMsg,
			float64(flat.RootBytesOut)/float64(tree.RootBytesOut)))
	}

	if *flagE14Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(*flagE14Out, data, 0o644); err != nil {
			log.Fatalf("write report: %v", err)
		}
		fmt.Printf("  (report written to %s)\n", *flagE14Out)
	}
}
