package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

const benchRTO = 30 * time.Millisecond

func newDapplet(net *netsim.Network, host, name string) *core.Dapplet {
	ep, err := net.Host(host).BindAny()
	if err != nil {
		log.Fatal(err)
	}
	return core.NewDapplet(name, "bench", transport.NewSimConn(ep),
		core.WithTransportConfig(transport.Config{RTO: benchRTO, Window: 256, RecvBuf: 4096}))
}

// runF1 reproduces Figure 1: the full three-site committee scenario, for
// both schedulers over identical calendars.
func runF1() {
	row("scheduler", "slot", "rounds", "proposals", "calls", "datagrams", "vlat")
	for _, mode := range []string{"session", "traditional"} {
		w, err := scenario.BuildCalendar(context.Background(), scenario.CalendarOptions{
			Sites: 3, MembersPerSite: 3, Hierarchical: mode == "session",
			Slots: 112, BusyProb: 0.65, CommonSlot: 90,
			Seed: seedOr(1996), Shards: *flagShards,
		})
		if err != nil {
			log.Fatal(err)
		}
		before := w.Net.Stats()
		var res interface {
			String() string
		}
		_ = res
		var slot, rounds, props, calls int
		if mode == "session" {
			r, err := w.Scheduler.Schedule(context.Background(), 0, 112, 28)
			if err != nil {
				log.Fatal(err)
			}
			slot, rounds, props, calls = r.Slot, r.Rounds, r.Proposals, r.Calls
		} else {
			r, err := w.Traditional.Schedule(context.Background(), 0, 112, 28)
			if err != nil {
				log.Fatal(err)
			}
			slot, rounds, props, calls = r.Slot, r.Rounds, r.Proposals, r.Calls
		}
		after := w.Net.Stats()
		row(mode, slot, rounds, props, calls, after.Sent-before.Sent,
			after.MaxVirtual.Round(time.Millisecond))
		w.Close()
	}
}

// runF2 measures session setup and teardown latency as the participant
// count grows, under WAN delays.
func runF2() {
	row("participants", "setup-vlat", "teardown-vlat", "datagrams")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		net := newNet(2, netsim.WithDefaultDelay(netsim.WAN()))
		dir := directory.New()
		var dapplets []*core.Dapplet
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("p%d", j)
			d := newDapplet(net, fmt.Sprintf("h%d", j), name)
			session.Attach(d, session.Policy{})
			dir.Register(context.Background(), directory.Entry{Name: name, Type: "bench", Addr: d.Addr()})
			dapplets = append(dapplets, d)
		}
		iniD := newDapplet(net, "hq", "director")
		ini := session.NewInitiator(iniD, dir)
		spec := session.Spec{ID: "f2"}
		for j := 0; j < n; j++ {
			spec.Participants = append(spec.Participants,
				session.Participant{Name: fmt.Sprintf("p%d", j), Role: "member"})
		}
		h, err := ini.Initiate(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		setupV := net.MaxVirtual()
		mid := net.Stats()
		if err := h.Terminate(context.Background()); err != nil {
			log.Fatal(err)
		}
		teardownV := net.MaxVirtual() - setupV
		after := net.Stats()
		row(n, setupV.Round(time.Millisecond), teardownV.Round(time.Millisecond), after.Sent)
		_ = mid
		for _, d := range dapplets {
			d.Stop()
		}
		iniD.Stop()
		net.Close()
	}
}

// runF3 measures Figure 3's binding patterns: multicast fan-out from one
// outbox and fan-in to one inbox.
func runF3() {
	const msgs = 2000
	row("pattern", "fan", "msgs/s(wall)", "deliveries")
	for _, fan := range []int{1, 4, 16, 64} {
		net := newNet(3)
		src := newDapplet(net, "src", "src")
		out := src.Outbox("out")
		var sinks []*core.Inbox
		var all []*core.Dapplet
		for i := 0; i < fan; i++ {
			d := newDapplet(net, fmt.Sprintf("d%d", i), fmt.Sprintf("d%d", i))
			all = append(all, d)
			in := d.Inbox("in")
			sinks = append(sinks, in)
			out.Add(in.Ref())
		}
		msg := &wire.Text{S: "fan-out payload"}
		start := time.Now()
		for k := 0; k < msgs; k++ {
			if err := out.Send(msg); err != nil {
				log.Fatal(err)
			}
			for _, in := range sinks {
				if _, err := in.Receive(); err != nil {
					log.Fatal(err)
				}
			}
		}
		dur := time.Since(start)
		row("fan-out", fan, int(float64(msgs)/dur.Seconds()), msgs*fan)
		src.Stop()
		for _, d := range all {
			d.Stop()
		}
		net.Close()
	}
	for _, fan := range []int{1, 4, 16} {
		net := newNet(3)
		dst := newDapplet(net, "dst", "dst")
		in := dst.Inbox("in")
		var outs []*core.Outbox
		var all []*core.Dapplet
		for i := 0; i < fan; i++ {
			d := newDapplet(net, fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i))
			all = append(all, d)
			o := d.Outbox("out")
			o.Add(in.Ref())
			outs = append(outs, o)
		}
		msg := &wire.Text{S: "fan-in payload"}
		start := time.Now()
		for k := 0; k < msgs; k++ {
			for _, o := range outs {
				if err := o.Send(msg); err != nil {
					log.Fatal(err)
				}
			}
			for j := 0; j < fan; j++ {
				if _, err := in.Receive(); err != nil {
					log.Fatal(err)
				}
			}
		}
		dur := time.Since(start)
		row("fan-in", fan, int(float64(msgs*fan)/dur.Seconds()), msgs*fan)
		dst.Stop()
		for _, d := range all {
			d.Stop()
		}
		net.Close()
	}
}

// runT1 sweeps committee size for both negotiation styles.
func runT1() {
	row("members", "scheduler", "slot", "calls", "datagrams", "vlat")
	for _, members := range []int{3, 6, 12, 24, 48} {
		for _, mode := range []string{"session", "traditional"} {
			w, err := scenario.BuildCalendar(context.Background(), scenario.CalendarOptions{
				Sites: members, MembersPerSite: 1, Hierarchical: false,
				Slots: 64, BusyProb: 0.4, CommonSlot: 50,
				Seed: seedOr(77), Shards: *flagShards,
			})
			if err != nil {
				log.Fatal(err)
			}
			before := w.Net.Stats()
			var slot, calls int
			if mode == "session" {
				r, err := w.Scheduler.Schedule(context.Background(), 0, 64, 64)
				if err != nil {
					log.Fatal(err)
				}
				slot, calls = r.Slot, r.Calls
			} else {
				r, err := w.Traditional.Schedule(context.Background(), 0, 64, 64)
				if err != nil {
					log.Fatal(err)
				}
				slot, calls = r.Slot, r.Calls
			}
			after := w.Net.Stats()
			row(members, mode, slot, calls, after.Sent-before.Sent,
				after.MaxVirtual.Round(time.Millisecond))
			w.Close()
		}
	}
}
