package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/lclock"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/snapshot"
	"repro/internal/state"
	"repro/internal/syncprim"
	"repro/internal/tokens"
	"repro/internal/transport"
	"repro/internal/wire"
)

// runE1 measures the reliable ordered layer under loss: goodput,
// retransmissions and duplicate suppression.
func runE1() {
	const msgs = 3000
	row("loss%", "msgs/s(wall)", "retx/msg", "dups-dropped", "delivered")
	for _, loss := range []float64{0, 0.01, 0.05, 0.10, 0.20} {
		net := newNet(4)
		net.SetLink("a", "b", netsim.LinkParams{Loss: loss, Dup: 0.01, Reorder: 0.05})
		epA, _ := net.Host("a").Bind(1)
		epB, _ := net.Host("b").Bind(1)
		cfg := transport.Config{RTO: 3 * time.Millisecond, MaxRetries: 200, Window: 64}
		ra := transport.NewReliable(transport.NewSimConn(epA), cfg)
		rb := transport.NewReliable(transport.NewSimConn(epB), cfg)
		payload := make([]byte, 256)
		start := time.Now()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < msgs; i++ {
				if _, _, err := rb.Recv(); err != nil {
					log.Fatal(err)
				}
			}
		}()
		for i := 0; i < msgs; i++ {
			if err := ra.Send(rb.LocalAddr(), payload); err != nil {
				log.Fatal(err)
			}
		}
		<-done
		dur := time.Since(start)
		sa, sb := ra.Stats(), rb.Stats()
		row(fmt.Sprintf("%.0f", loss*100), int(float64(msgs)/dur.Seconds()),
			fmt.Sprintf("%.3f", float64(sa.Retransmits)/float64(msgs)),
			sb.DupsDropped, sb.Delivered)
		ra.Close()
		rb.Close()
		net.Close()
	}
}

// runE2 measures token grant throughput under contention and deadlock
// detection latency for wait cycles of growing size.
func runE2() {
	row("clients", "grant-release/s(wall)")
	for _, clients := range []int{1, 2, 4, 8} {
		net := newNet(5)
		hub := newDapplet(net, "hub", "hub")
		alloc := tokens.Serve(hub, tokens.Bag{"r": clients})
		const per = 500
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			mgr := tokens.NewManager(newDapplet(net, fmt.Sprintf("h%d", c), fmt.Sprintf("c%d", c)), alloc.Ref())
			wg.Add(1)
			go func(m *tokens.Manager) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := m.Request(tokens.Bag{"r": 1}); err != nil {
						log.Fatal(err)
					}
					if err := m.Release(tokens.Bag{"r": 1}); err != nil {
						log.Fatal(err)
					}
				}
			}(mgr)
		}
		wg.Wait()
		dur := time.Since(start)
		row(clients, int(float64(clients*per)/dur.Seconds()))
		net.Close()
	}

	row("cycle-size", "deadlock-detect-latency(wall)")
	for _, n := range []int{2, 4, 8} {
		net := newNet(6)
		hub := newDapplet(net, "hub", "hub")
		pop := tokens.Bag{}
		for i := 0; i < n; i++ {
			pop[tokens.Color(fmt.Sprintf("f%d", i))] = 1
		}
		alloc := tokens.Serve(hub, pop)
		mgrs := make([]*tokens.Manager, n)
		for i := range mgrs {
			mgrs[i] = tokens.NewManager(newDapplet(net, fmt.Sprintf("h%d", i), fmt.Sprintf("p%d", i)), alloc.Ref())
			if err := mgrs[i].Request(tokens.Bag{tokens.Color(fmt.Sprintf("f%d", i)): 1}); err != nil {
				log.Fatal(err)
			}
		}
		// Close the cycle: everyone requests its neighbour's fork.
		start := time.Now()
		errs := make(chan error, n)
		for i := range mgrs {
			next := tokens.Color(fmt.Sprintf("f%d", (i+1)%n))
			go func(m *tokens.Manager, c tokens.Color) {
				errs <- m.Request(tokens.Bag{c: 1})
			}(mgrs[i], next)
		}
		detected := time.Duration(0)
		for i := 0; i < n; i++ {
			if err := <-errs; errors.Is(err, tokens.ErrDeadlock) && detected == 0 {
				detected = time.Since(start)
			}
		}
		row(n, detected.Round(time.Microsecond))
		net.Close()
	}
}

// runE3 demonstrates the global snapshot criterion: with the Lamport
// layer there are zero violations; with naive unsynchronized counters a
// large fraction of receives violate it. Also reports stamping cost.
func runE3() {
	const hops = 20000
	// A ring of four relays; each receive checks the criterion.
	row("clock", "messages", "criterion-violations")
	for _, mode := range []string{"lamport", "naive"} {
		violations := 0
		n := 4
		clocks := make([]*lclock.Clock, n)
		naive := make([]uint64, n)
		for i := range clocks {
			clocks[i] = lclock.New(fmt.Sprintf("p%d", i))
		}
		// Simulate uneven local activity: process 0 is busy.
		for i := 0; i < hops; i++ {
			src := i % n
			dst := (i + 1) % n
			if src == 0 {
				for k := 0; k < 3; k++ {
					clocks[0].Tick()
					naive[0]++
				}
			}
			var stamp uint64
			if mode == "lamport" {
				stamp = clocks[src].StampSend()
				after := clocks[dst].ObserveRecv(stamp)
				if after <= stamp {
					violations++
				}
			} else {
				naive[src]++
				stamp = naive[src]
				naive[dst]++
				if naive[dst] <= stamp {
					violations++
				}
			}
		}
		row(mode, hops, violations)
	}

	start := time.Now()
	c1, c2 := lclock.New("a"), lclock.New("b")
	const ops = 1_000_000
	for i := 0; i < ops; i++ {
		c2.ObserveRecv(c1.StampSend())
	}
	perOp := time.Since(start) / ops
	fmt.Printf("  stamping cost: %v per send+receive pair\n", perOp)
}

// runE4 sweeps snapshot membership for both algorithms over a live token
// ring, validating every cut.
func runE4() {
	row("nodes", "algorithm", "duration(wall)", "in-flight-captured", "consistent")
	for _, n := range []int{4, 8, 16} {
		for _, algo := range []string{"marker", "clock"} {
			net := newNet(7)
			members := make([]snapshot.Member, 0, n)
			services := make([]*snapshot.Service, 0, n)
			dapplets := make([]*core.Dapplet, 0, n)
			held := make([]int, n)
			var mu sync.Mutex
			for i := 0; i < n; i++ {
				d := newDapplet(net, fmt.Sprintf("n%d", i), fmt.Sprintf("node%d", i))
				dapplets = append(dapplets, d)
				i := i
				services = append(services, snapshot.Attach(d, func() any {
					mu.Lock()
					defer mu.Unlock()
					return held[i]
				}))
				members = append(members, snapshot.Member{Name: d.Name(), Addr: d.Addr()})
			}
			for i, d := range dapplets {
				next := dapplets[(i+1)%n]
				out := d.Outbox("succ")
				out.Add(wire.InboxRef{Dapplet: next.Addr(), Inbox: "ring"})
				d.Handle("ring", func(*wire.Envelope) {})
				i := i
				d.OnRecv(func(env *wire.Envelope) {
					if env.To.Inbox != "ring" {
						return
					}
					mu.Lock()
					held[i]++
					fwd := held[i] > 1
					if fwd {
						held[i]--
					}
					mu.Unlock()
					if fwd {
						_ = out.Send(&wire.Text{S: "tok"})
					}
				})
			}
			for i, svc := range services {
				peers := make([]snapshot.Member, 0, n-1)
				for j, m := range members {
					if j != i {
						peers = append(peers, m)
					}
				}
				svc.SetPeers(peers)
			}
			coordD := newDapplet(net, "coord", "coord")
			coord := snapshot.NewCoordinator(coordD, members)
			coord.SetSettle(5 * time.Millisecond)
			// Tokens: n held (1 each) + n/2 circulating.
			for i := 0; i < n+n/2; i++ {
				if err := dapplets[0].Outbox("succ").Send(&wire.Text{S: "tok"}); err != nil {
					log.Fatal(err)
				}
			}
			time.Sleep(20 * time.Millisecond)
			start := time.Now()
			var g *snapshot.Global
			var err error
			if algo == "marker" {
				g, err = coord.SnapshotMarker(context.Background())
			} else {
				g, err = coord.SnapshotClock(context.Background(), 1_000_000)
			}
			if err != nil {
				log.Fatal(err)
			}
			dur := time.Since(start)
			consistent := "yes"
			if err := g.CheckConsistent(); err != nil {
				consistent = "NO: " + err.Error()
			}
			row(n, algo, dur.Round(time.Microsecond), g.InFlight(), consistent)
			net.Close()
		}
	}
}

// runE5 measures RPC latency and throughput.
func runE5() {
	const calls = 3000
	row("mode", "clients", "calls/s(wall)")
	for _, clients := range []int{1, 4, 8} {
		net := newNet(8)
		server := newDapplet(net, "s", "server")
		var mu sync.Mutex
		n := 0
		ref := rpc.Serve(server, "counter", rpc.Object{
			"add": func(raw json.RawMessage) (any, error) {
				mu.Lock()
				defer mu.Unlock()
				n++
				return n, nil
			},
		})
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			cli := rpc.NewClient(newDapplet(net, fmt.Sprintf("c%d", c), fmt.Sprintf("client%d", c)))
			wg.Add(1)
			go func(cli *rpc.Client) {
				defer wg.Done()
				for i := 0; i < calls/clients; i++ {
					if err := cli.Call(context.Background(), ref, "add", nil, nil); err != nil {
						log.Fatal(err)
					}
				}
			}(cli)
		}
		wg.Wait()
		dur := time.Since(start)
		row("sync", clients, int(float64(calls)/dur.Seconds()))
		net.Close()
	}
	// Async: one client blasting casts.
	net := newNet(8)
	server := newDapplet(net, "s", "server")
	var mu sync.Mutex
	applied := 0
	ref := rpc.Serve(server, "counter", rpc.Object{
		"add": func(raw json.RawMessage) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			applied++
			return applied, nil
		},
	})
	cli := rpc.NewClient(newDapplet(net, "c", "client"))
	start := time.Now()
	for i := 0; i < calls; i++ {
		if err := cli.Cast(ref, "add", nil); err != nil {
			log.Fatal(err)
		}
	}
	for {
		mu.Lock()
		done := applied == calls
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	dur := time.Since(start)
	row("async", 1, int(float64(calls)/dur.Seconds()))
	net.Close()
}

// runE6 measures the distributed barrier and token semaphore.
func runE6() {
	row("construct", "parties", "ops/s(wall)")
	for _, parties := range []int{2, 8, 32} {
		net := newNet(9)
		svc := syncprim.ServeBarriers(newDapplet(net, "hub", "coord"))
		clients := make([]*syncprim.Client, parties)
		for i := range clients {
			clients[i] = syncprim.NewClient(newDapplet(net, fmt.Sprintf("h%d", i), fmt.Sprintf("p%d", i)))
		}
		const rounds = 200
		start := time.Now()
		for r := 0; r < rounds; r++ {
			errs := make(chan error, parties)
			for _, c := range clients {
				go func(c *syncprim.Client) {
					_, err := c.BarrierAwait(svc.Ref(), "b", parties)
					errs <- err
				}(c)
			}
			for k := 0; k < parties; k++ {
				if err := <-errs; err != nil {
					log.Fatal(err)
				}
			}
		}
		dur := time.Since(start)
		row("dist-barrier", parties, int(float64(rounds)/dur.Seconds()))
		net.Close()
	}
}

// runE7 shows interference control at the session level: overlapping
// write sets are rejected (or serialized), disjoint sets run concurrently.
func runE7() {
	row("access-pattern", "sessions-attempted", "accepted", "rejected-interference")
	for _, pattern := range []string{"disjoint", "overlapping"} {
		net := newNet(10)
		target := newDapplet(net, "h", "shared-dapplet")
		session.Attach(target, session.Policy{})
		dirSvc := newDapplet(net, "hq", "director")
		dir := newDirectory(target)
		ini := session.NewInitiator(dirSvc, dir)
		const attempts = 8
		accepted, rejected := 0, 0
		for i := 0; i < attempts; i++ {
			v := "shared"
			if pattern == "disjoint" {
				v = fmt.Sprintf("v%d", i)
			}
			spec := session.Spec{
				ID: fmt.Sprintf("%s-%d", pattern, i),
				Participants: []session.Participant{{
					Name: "shared-dapplet", Role: "x",
					Access: state.AccessSet{Write: []string{v}},
				}},
			}
			_, err := ini.Initiate(context.Background(), spec)
			var rej *session.RejectedError
			switch {
			case err == nil:
				accepted++
			case errors.As(err, &rej):
				rejected++
			default:
				log.Fatal(err)
			}
		}
		row(pattern, attempts, accepted, rejected)
		net.Close()
	}
}

// runE8 measures the wire codec: the binary envelope framing against the
// JSON fallback, encode and decode, per body shape. The binary encode
// path reuses one buffer, the steady-state shape of the dapplet send path.
func runE8() {
	mkEnv := func(body wire.Msg) *wire.Envelope {
		return &wire.Envelope{
			To:          wire.InboxRef{Dapplet: netsim.Addr{Host: "caltech", Port: 4021}, Inbox: "students"},
			FromDapplet: netsim.Addr{Host: "anu.au", Port: 999},
			FromOutbox:  "out",
			Session:     "s-1",
			Lamport:     1 << 40,
			Body:        body,
		}
	}
	bodies := []struct {
		name string
		body wire.Msg
	}{
		{"text-32B", &wire.Text{S: "payload-payload-payload-payload"}},
		{"bytes-1KB", &wire.Bytes{B: make([]byte, 1024)}},
	}
	const iters = 50000
	row("body", "enc-bin ns", "enc-json ns", "enc-speedup", "dec-bin ns", "dec-json ns", "size-bin", "size-json")
	for _, tc := range bodies {
		env := mkEnv(tc.body)
		bin, err := wire.MarshalEnvelope(env)
		if err != nil {
			log.Fatal(err)
		}
		js, err := wire.MarshalEnvelopeJSON(env)
		if err != nil {
			log.Fatal(err)
		}
		perOp := func(f func()) float64 {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			return float64(time.Since(start).Nanoseconds()) / iters
		}
		buf := make([]byte, 0, len(bin))
		encBin := perOp(func() {
			buf, err = wire.AppendEnvelope(buf[:0], env)
			if err != nil {
				log.Fatal(err)
			}
		})
		encJSON := perOp(func() {
			if _, err := wire.MarshalEnvelopeJSON(env); err != nil {
				log.Fatal(err)
			}
		})
		decBin := perOp(func() {
			if _, err := wire.UnmarshalEnvelope(bin); err != nil {
				log.Fatal(err)
			}
		})
		decJSON := perOp(func() {
			if _, err := wire.UnmarshalEnvelope(js); err != nil {
				log.Fatal(err)
			}
		})
		row(tc.name,
			fmt.Sprintf("%.0f", encBin), fmt.Sprintf("%.0f", encJSON),
			fmt.Sprintf("%.1fx", encJSON/encBin),
			fmt.Sprintf("%.0f", decBin), fmt.Sprintf("%.0f", decJSON),
			len(bin), len(js))
	}
}

func newDirectory(ds ...*core.Dapplet) *dirT {
	d := dirNew()
	for _, dd := range ds {
		d.Register(context.Background(), dirEntry{Name: dd.Name(), Type: dd.Type(), Addr: dd.Addr()})
	}
	return d
}

// Aliases keeping the helper above terse.
type dirT = directory.Directory

type dirEntry = directory.Entry

func dirNew() *dirT { return directory.New() }
