// Command wwbench regenerates every experiment table in EXPERIMENTS.md:
// the paper's three figures as runnable scenarios (F1-F3), the
// traditional-vs-session comparison its introduction argues for (T1), and
// a characterization experiment per mechanism the paper specifies
// (E1-E13). Run all experiments or select one with -exp.
//
// Latencies labelled "vlat" are critical-path virtual latencies under the
// configured WAN/LAN delay models (see internal/netsim); wall-clock
// columns measure the simulation itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/netsim"
)

type experiment struct {
	id   string
	desc string
	run  func()
}

var (
	flagShards = flag.Int("shards", 0,
		"delivery shard count for every experiment's network (0 = GOMAXPROCS); 1 makes single-driver runs bit-reproducible per seed")
	flagSeed = flag.Int64("seed", 0,
		"seed override for every experiment's network and workload (0 = per-experiment default)")
	flagCPUProfile = flag.String("cpuprofile", "",
		"write a CPU profile of the selected experiments to this file (go tool pprof)")
	flagMemProfile = flag.String("memprofile", "",
		"write a heap profile taken after the selected experiments to this file (go tool pprof)")
)

// seedOr resolves an experiment's default seed against the -seed flag.
func seedOr(def int64) int64 {
	if *flagSeed != 0 {
		return *flagSeed
	}
	return def
}

// netOpts builds one experiment's network options, applying the global
// -seed and -shards overrides. Extra options are appended after the
// overrides.
func netOpts(defaultSeed int64, extra ...netsim.Option) []netsim.Option {
	opts := []netsim.Option{netsim.WithSeed(seedOr(defaultSeed))}
	if *flagShards > 0 {
		opts = append(opts, netsim.WithShards(*flagShards))
	}
	return append(opts, extra...)
}

// newNet creates one experiment's network with the global overrides
// applied.
func newNet(defaultSeed int64, extra ...netsim.Option) *netsim.Network {
	return netsim.New(netOpts(defaultSeed, extra...)...)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: f1,f2,f3,t1,e1,...,e13 or all")
	flag.Parse()

	experiments := []experiment{
		{"f1", "Figure 1: three-site calendar session (9 members, 3 secretaries)", runF1},
		{"f2", "Figure 2: initiator-driven session setup vs participants", runF2},
		{"f3", "Figure 3: outbox fan-out / fan-in throughput", runF3},
		{"t1", "Traditional sequential negotiation vs session scheduler", runT1},
		{"e1", "Ordered-delivery layer under loss", runE1},
		{"e2", "Token managers: grants and deadlock detection", runE2},
		{"e3", "Clocks: snapshot-criterion violations, stamping cost", runE3},
		{"e4", "Checkpointing: marker vs clock snapshots", runE4},
		{"e5", "RPC over inboxes: sync vs async", runE5},
		{"e6", "Distributed synchronization constructs", runE6},
		{"e7", "Session interference control", runE7},
		{"e8", "Wire codec: binary envelope framing vs JSON", runE8},
		{"e9", "Failure detection latency and checkpoint-restore recovery", runE9},
		{"e10", "Replicated directory service: lookup scaling, caching, replica failover", runE10},
		{"e11", "Swarm-scale churn harness: join/leave/crash churn, detector cost, footprint", runE11},
		{"e12", "Batched I/O: frame coalescing, ack piggybacking, mmsg syscall batching", runE12},
		{"e13", "Gossip substrate: verdict-quorum false-positive A/B, directory anti-entropy convergence", runE13},
		{"e14", "Relay-tree multicast: flat vs tree broadcast fan-out at 100/1k/10k participants", runE14},
	}

	if *flagCPUProfile != "" {
		f, err := os.Create(*flagCPUProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *flagMemProfile != "" {
		defer func() {
			f, err := os.Create(*flagMemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(2)
			}
		}()
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		ran = true
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(e.id), e.desc)
		start := time.Now()
		e.run()
		fmt.Printf("(%s wall clock)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// row prints one formatted table row.
func row(cols ...any) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%v", c)
	}
	fmt.Println("  " + strings.Join(parts, "\t"))
}
