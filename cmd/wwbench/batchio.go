package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/transport"
)

var (
	flagE12Frames = flag.Int("e12frames", 20000,
		"E12 frames moved per direction in each cell of the batching matrix")
	flagE12Out = flag.String("e12out", "",
		"write the full E12 batching report as JSON to this path")
)

// E12Row is one cell of the E12 batching matrix: a (medium, frame size,
// fan-out, batching on/off) combination and its measured throughput and
// per-frame costs.
type E12Row struct {
	// Medium is "netsim" or "udp"; Batched says whether coalescing (and,
	// for udp, mmsg syscall batching) was enabled.
	Medium  string `json:"medium"`
	Batched bool   `json:"batched"`
	// FrameSize is the payload size in bytes, Fanout the number of
	// receivers the sender round-robins over, Frames the number of data
	// frames moved per direction.
	FrameSize int `json:"frame_size"`
	Fanout    int `json:"fanout"`
	Frames    int `json:"frames"`
	// NsPerFrame and FramesPerSec are wall-clock throughput; the
	// remaining fields are the transport's own accounting: logical
	// frames per physical datagram, standalone-ack fraction, syscalls
	// per frame (udp only) and wire bytes per frame (netsim only,
	// including the modelled per-datagram overhead).
	NsPerFrame        float64 `json:"ns_per_frame"`
	FramesPerSec      float64 `json:"frames_per_sec"`
	FramesPerDatagram float64 `json:"frames_per_datagram"`
	StandaloneAckPct  float64 `json:"standalone_ack_pct"`
	SyscallsPerFrame  float64 `json:"syscalls_per_frame,omitempty"`
	WireBytesPerFrame float64 `json:"wire_bytes_per_frame,omitempty"`
}

// e12Transport builds the reliable-layer config for one E12 cell.
func e12Transport(batched bool) transport.Config {
	return transport.Config{
		RTO:        100 * time.Millisecond,
		MaxRetries: 100,
		Window:     1024,
		Coalesce:   batched,
	}
}

// e12Relay pumps frames through an already-wired sender/receiver set:
// the sender round-robins frames across the receivers while every
// receiver drains and a mirror goroutine on receiver 0 sends the same
// volume back, keeping the first pair busy bidirectionally so ack
// piggybacking has reverse traffic to ride.
func e12Relay(snd *transport.Reliable, rcvs []*transport.Reliable, frames, size int) (time.Duration, error) {
	payload := make([]byte, size)
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(rcvs)+2)
	counts := make([]int, len(rcvs))
	for i := range rcvs {
		counts[i] = frames / len(rcvs)
		if i < frames%len(rcvs) {
			counts[i]++
		}
	}
	start := time.Now()
	for i, r := range rcvs {
		wg.Add(1)
		go func(r *transport.Reliable, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, _, err := r.Recv(); err != nil {
					errs <- err
					return
				}
			}
		}(r, counts[i])
	}
	// Mirror traffic: receiver 0 echoes the same frame count back.
	wg.Add(2)
	go func() {
		defer wg.Done()
		to := snd.LocalAddr()
		for j := 0; j < counts[0]; j++ {
			if err := rcvs[0].Send(to, payload); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < counts[0]; j++ {
			if _, _, err := snd.Recv(); err != nil {
				errs <- err
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		if err := snd.Send(rcvs[i%len(rcvs)].LocalAddr(), payload); err != nil {
			return 0, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

// e12Accounting folds the endpoints' transport stats into the row's
// coalescing and ack columns.
func e12Accounting(row *E12Row, rels ...*transport.Reliable) (frames, calls uint64) {
	var st transport.Stats
	for _, r := range rels {
		s := r.Stats()
		st.DataSent += s.DataSent
		st.Retransmits += s.Retransmits
		st.AcksSent += s.AcksSent
		st.AcksPiggybacked += s.AcksPiggybacked
		st.DatagramsOut += s.DatagramsOut
		st.IO.ReadCalls += s.IO.ReadCalls
		st.IO.WriteCalls += s.IO.WriteCalls
	}
	frames = st.DataSent + st.Retransmits + st.AcksSent
	calls = st.IO.ReadCalls + st.IO.WriteCalls
	if st.DatagramsOut > 0 {
		row.FramesPerDatagram = float64(frames) / float64(st.DatagramsOut)
	}
	if t := st.AcksSent + st.AcksPiggybacked; t > 0 {
		row.StandaloneAckPct = 100 * float64(st.AcksSent) / float64(t)
	}
	return frames, calls
}

// e12Netsim runs one netsim cell: a busy sender fanning frames out over
// the simulated network with coalescing on or off.
func e12Netsim(batched bool, size, fanout, frames int) (E12Row, error) {
	row := E12Row{Medium: "netsim", Batched: batched, FrameSize: size, Fanout: fanout, Frames: frames}
	net := newNet(12)
	defer net.Close()
	epS, err := net.Host("s").Bind(1)
	if err != nil {
		return row, err
	}
	snd := transport.NewReliable(transport.NewSimConn(epS), e12Transport(batched))
	defer snd.Close()
	rcvs := make([]*transport.Reliable, fanout)
	for i := range rcvs {
		ep, err := net.Host(fmt.Sprintf("r%d", i)).Bind(1)
		if err != nil {
			return row, err
		}
		rcvs[i] = transport.NewReliable(transport.NewSimConn(ep), e12Transport(batched))
		defer rcvs[i].Close()
	}
	elapsed, err := e12Relay(snd, rcvs, frames, size)
	if err != nil {
		return row, err
	}
	moved := frames + frames/fanout // forward plus mirrored traffic
	row.NsPerFrame = float64(elapsed.Nanoseconds()) / float64(moved)
	row.FramesPerSec = float64(moved) / elapsed.Seconds()
	e12Accounting(&row, append(rcvs, snd)...)
	row.WireBytesPerFrame = float64(net.Stats().WireBytes) / float64(moved)
	return row, nil
}

// e12UDP runs one real-UDP loopback cell: the same workload over
// 127.0.0.1 sockets, with mmsg syscall batching following the coalescing
// switch.
func e12UDP(batched bool, size, fanout, frames int) (E12Row, error) {
	row := E12Row{Medium: "udp", Batched: batched, FrameSize: size, Fanout: fanout, Frames: frames}
	ucfg := transport.UDPConfig{}
	if batched {
		ucfg.Batch = 16
	}
	listen := func() (*transport.Reliable, error) {
		pc, err := transport.ListenUDPConfig("127.0.0.1:0", ucfg)
		if err != nil {
			return nil, err
		}
		return transport.NewReliable(pc, e12Transport(batched)), nil
	}
	snd, err := listen()
	if err != nil {
		return row, err
	}
	defer snd.Close()
	rcvs := make([]*transport.Reliable, fanout)
	for i := range rcvs {
		if rcvs[i], err = listen(); err != nil {
			return row, err
		}
		defer rcvs[i].Close()
	}
	elapsed, err := e12Relay(snd, rcvs, frames, size)
	if err != nil {
		return row, err
	}
	moved := frames + frames/fanout
	row.NsPerFrame = float64(elapsed.Nanoseconds()) / float64(moved)
	row.FramesPerSec = float64(moved) / elapsed.Seconds()
	logical, calls := e12Accounting(&row, append(rcvs, snd)...)
	if logical > 0 {
		row.SyscallsPerFrame = float64(calls) / float64(logical)
	}
	return row, nil
}

// runE12 sweeps the batched-I/O matrix: frame coalescing over netsim
// (datagram and wire-byte reduction) and over real loopback UDP sockets
// (sendmmsg/recvmmsg syscall reduction), each at several frame sizes and
// fan-outs with batching on and off. -e12frames sizes each cell;
// -e12out dumps the matrix as JSON.
func runE12() {
	type cell struct{ size, fanout int }
	cells := []cell{{32, 1}, {256, 1}, {1024, 1}, {32, 8}}
	var rows []E12Row
	run := func(medium string, f func(bool, int, int, int) (E12Row, error)) {
		for _, c := range cells {
			var on, off E12Row
			var err error
			if off, err = f(false, c.size, c.fanout, *flagE12Frames); err != nil {
				log.Printf("  %s %dB fan%d unbatched: %v", medium, c.size, c.fanout, err)
				continue
			}
			if on, err = f(true, c.size, c.fanout, *flagE12Frames); err != nil {
				log.Printf("  %s %dB fan%d batched: %v", medium, c.size, c.fanout, err)
				continue
			}
			rows = append(rows, off, on)
			extra := fmt.Sprintf("%.0f wireB/frm -> %.0f", off.WireBytesPerFrame, on.WireBytesPerFrame)
			if medium == "udp" {
				extra = fmt.Sprintf("%.2f sys/frm -> %.3f", off.SyscallsPerFrame, on.SyscallsPerFrame)
			}
			row(medium,
				fmt.Sprintf("%dB", c.size),
				fmt.Sprintf("fan%d", c.fanout),
				fmt.Sprintf("%.0f -> %.0f frm/s", off.FramesPerSec, on.FramesPerSec),
				fmt.Sprintf("%.1fx", on.FramesPerSec/off.FramesPerSec),
				fmt.Sprintf("%.2f -> %.2f frm/dgram", off.FramesPerDatagram, on.FramesPerDatagram),
				fmt.Sprintf("%.0f%% -> %.0f%% sa-ack", off.StandaloneAckPct, on.StandaloneAckPct),
				extra)
		}
	}
	row("medium", "frame", "fanout", "throughput off -> on", "speedup", "coalescing", "acks", "cost")
	run("netsim", e12Netsim)
	run("udp", e12UDP)

	if *flagE12Out != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			log.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(*flagE12Out, data, 0o644); err != nil {
			log.Fatalf("write report: %v", err)
		}
		fmt.Printf("  (report written to %s)\n", *flagE12Out)
	}
}
