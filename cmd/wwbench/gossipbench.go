package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/swarm"
)

var (
	flagE13N = flag.Int("e13n", 300,
		"E13 swarm population under partition injection")
	flagE13Dur = flag.Duration("e13dur", 4*time.Second,
		"E13 churn phase length")
	flagE13PRate = flag.Float64("e13prate", 2,
		"E13 partition injection rate in partitions/sec (each isolates one host, then heals)")
	flagE13Out = flag.String("e13out", "",
		"write both E13 variant reports as JSON to this path")
)

// e13Config builds one E13 variant: the shared population, churn,
// session and partition load, with the gossip substrate on or off.
// With gossip on, every Down needs a quorum of two confirming
// detectors (rumor-assisted) and the replicated directory runs
// anti-entropy; off, a single partitioned witness can commit a Down
// on its own and the replicas never reconcile.
func e13Config(gossip bool) swarm.Config {
	n := *flagE13N
	cfg := swarm.Config{
		N:             n,
		Seed:          seedOr(13),
		DirShards:     2,
		DirReplicas:   2,
		Initiators:    2,
		Interval:      150 * time.Millisecond,
		Multiplier:    2,
		PartitionRate: *flagE13PRate,
		PartitionDur:  400 * time.Millisecond,
		ChurnRate:     float64(n) / 8,
		SessionRate:   float64(n) / 4,
		Duration:      *flagE13Dur,
		TickCostPeers: -1,
	}
	if gossip {
		cfg.Quorum = 2
		cfg.GossipInterval = 100 * time.Millisecond
	}
	if *flagShards > 0 {
		cfg.NetShards = *flagShards
	}
	return cfg
}

// runE13 drives the gossip-substrate experiment: the same partitioned,
// churning swarm twice — single-witness verdicts without gossip vs
// quorum verdicts with rumor spread and directory anti-entropy — and
// compares false-Down rates, verdict latency and replica convergence.
// -e13n, -e13dur and -e13prate size the run; -e13out dumps both full
// reports as JSON.
func runE13() {
	variants := []struct {
		name   string
		gossip bool
	}{
		{"single-witness", false},
		{"quorum+gossip", true},
	}
	reports := make(map[string]*swarm.Report, len(variants))

	row("variant", "downs", "false", "false%", "parts", "down-p50-ms", "down-p95-ms", "rounds", "pulls", "deltas", "rumors-s/r", "conv-rounds")
	for _, v := range variants {
		rep, err := swarm.Run(e13Config(v.gossip))
		if err != nil {
			log.Fatalf("%s run: %v", v.name, err)
		}
		reports[v.name] = rep
		churn := rep.Phase("churn")
		falsePct := 0.0
		if churn.Downs > 0 {
			falsePct = 100 * float64(churn.FalseDowns) / float64(churn.Downs)
		}
		row(v.name,
			churn.Downs, churn.FalseDowns, fmt.Sprintf("%.0f", falsePct),
			churn.Partitions,
			fmt.Sprintf("%.1f", rep.DownLatency.P50Ms),
			fmt.Sprintf("%.1f", rep.DownLatency.P95Ms),
			churn.GossipRounds, churn.GossipPulls, churn.GossipDeltas,
			fmt.Sprintf("%d/%d", churn.RumorsSent, churn.RumorsRecv),
			rep.DirConvergeRounds)
	}
	fmt.Println()
	single, quorum := reports["single-witness"], reports["quorum+gossip"]
	row("population", fmt.Sprintf("%d live without gossip vs %d with, of %d",
		single.LiveMembers, quorum.LiveMembers, *flagE13N))
	if quorum.DirConvergeRounds >= 0 {
		row("anti-entropy", fmt.Sprintf("replicas converged %d gossip rounds after churn stopped",
			quorum.DirConvergeRounds))
	} else {
		row("anti-entropy", "replicas did NOT converge within the probe bound")
	}

	if *flagE13Out != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			log.Fatalf("marshal reports: %v", err)
		}
		if err := os.WriteFile(*flagE13Out, data, 0o644); err != nil {
			log.Fatalf("write reports: %v", err)
		}
		fmt.Printf("  (report written to %s)\n", *flagE13Out)
	}
}
