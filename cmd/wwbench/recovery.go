package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/failure"
	"repro/internal/scenario"
)

// runE9 characterizes the failure subsystem. The first table sweeps the
// heartbeat interval and measures detection latency on a live pair —
// from the instant the peer's host crashes to the watcher's Suspect and
// Down verdicts (expected: ~Multiplier intervals to Suspect, twice that
// to Down). The second runs the full secretary-crash recovery scenario
// and reports its end-to-end timings: detection, repair
// (restart + restore-from-store + relink survivors), and the scheduling
// outcome after recovery.
func runE9() {
	row("hb-interval", "multiplier", "suspect-latency", "down-latency")
	for _, interval := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		suspect, down := measureDetection(interval, 2)
		row(interval, 2, suspect.Round(100*time.Microsecond), down.Round(100*time.Microsecond))
	}

	fmt.Println()
	row("scenario", "detection", "repair", "retries", "slot")
	res, err := scenario.RunSecretaryCrashRecovery(context.Background(), scenario.RecoveryOptions{
		Calendar: scenario.CalendarOptions{
			Sites: 3, MembersPerSite: 3, Slots: 112,
			BusyProb: 0.6, CommonSlot: 77,
			Seed: seedOr(1996), Shards: *flagShards,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	row("secretary-crash", res.Detection.Round(100*time.Microsecond),
		res.Recovery.Round(100*time.Microsecond), res.Retries, res.Result.Slot)
}

// measureDetection crashes a watched peer's host once and times the
// watcher's Suspect and Down verdicts.
func measureDetection(interval time.Duration, multiplier int) (suspect, down time.Duration) {
	net := newNet(11)
	defer net.Close()
	watcher := newDapplet(net, "hw", "watcher")
	peer := newDapplet(net, "hp", "peer")
	cfg := failure.Config{Interval: interval, Multiplier: multiplier}
	dw := failure.Attach(watcher, cfg)
	dp := failure.Attach(peer, cfg)
	type stamp struct {
		state failure.State
		at    time.Time
	}
	events := make(chan stamp, 16)
	dw.OnEvent(func(ev failure.Event) {
		events <- stamp{ev.State, time.Now()}
	})
	dw.Watch("peer", peer.Addr())
	dp.Watch("watcher", watcher.Addr())
	// Give the pair a few intervals to establish a heartbeat rhythm.
	time.Sleep(4 * interval)
	start := time.Now()
	net.Crash("hp")
	deadline := time.After(time.Minute)
	for {
		select {
		case s := <-events:
			switch s.state {
			case failure.Suspect:
				suspect = s.at.Sub(start)
			case failure.Down:
				down = s.at.Sub(start)
				watcher.Stop()
				peer.Stop()
				return suspect, down
			}
		case <-deadline:
			log.Fatal("e9: no Down verdict within a minute")
		}
	}
}
