package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/swarm"
)

var (
	flagSwarm = flag.Int("swarm", 2000,
		"E11 swarm population (dapplets under churn); 100000+ needs several GB and a long -swarmdur")
	flagChurn = flag.Float64("churn", 0,
		"E11 churn rate in ops/sec across join/leave/crash/reincarnate (0 = population/20)")
	flagSessRate = flag.Float64("sessrate", 0,
		"E11 initiator session rate in sessions/sec (0 = population/10)")
	flagSwarmDur = flag.Duration("swarmdur", 5*time.Second,
		"E11 churn phase length")
	flagE11Out = flag.String("e11out", "",
		"write the full E11 swarm report as JSON to this path")
	flagCoalesce = flag.Bool("coalesce", true,
		"E11 transport frame coalescing (false reverts to one datagram per frame for an A/B baseline)")
)

// e11SwarmConfig derives the swarm config from the E11 flags, scaling
// the detector interval with the population the same way the
// BenchmarkE11Swarm ladder does so the heartbeat fabric's aggregate
// rate stays sustainable in one process.
func e11SwarmConfig() swarm.Config {
	n := *flagSwarm
	cfg := swarm.Config{
		N:           n,
		Seed:        seedOr(42),
		ChurnRate:   *flagChurn,
		SessionRate: *flagSessRate,
		Duration:    *flagSwarmDur,
		NoCoalesce:  !*flagCoalesce,
	}
	if *flagShards > 0 {
		cfg.NetShards = *flagShards
	}
	switch {
	case n >= 100_000:
		cfg.Interval = 4 * time.Second
		cfg.RingWatch = 1
	case n >= 10_000:
		cfg.Interval = time.Second
	default:
		cfg.Interval = 250 * time.Millisecond
	}
	return cfg
}

// runE11 drives the swarm-scale churn harness: a member population under
// continuous join/leave/crash/reincarnate churn with directory-routed
// sessions, reporting per-phase throughput, transport coalescing factor,
// detector cost per watched peer, verdict latency and per-dapplet
// footprint. -swarm, -churn, -sessrate and -swarmdur size the run;
// -coalesce=false reverts the transport to one datagram per frame for an
// A/B baseline; -e11out dumps the full report as JSON.
func runE11() {
	cfg := e11SwarmConfig()
	rep, err := swarm.Run(cfg)
	if err != nil {
		log.Fatalf("swarm run: %v", err)
	}

	row("phase", "wall-s", "msgs/s", "hb/s", "frm/dgram", "sa-ack%", "dirhit%", "ops", "sessions", "downs", "ups", "det-ns/peer/s")
	for _, p := range rep.Phases {
		row(p.Name,
			fmt.Sprintf("%.1f", p.WallSeconds),
			fmt.Sprintf("%.0f", p.MsgsPerSec),
			fmt.Sprintf("%.0f", p.HeartbeatsPerSec),
			fmt.Sprintf("%.2f", p.FramesPerDatagram),
			fmt.Sprintf("%.0f", p.StandaloneAckRatio*100),
			fmt.Sprintf("%.0f", p.DirHitRate*100),
			p.Ops, p.Sessions, p.Downs, p.Ups,
			fmt.Sprintf("%.0f", p.DetectorNsPerPeerSec))
	}
	fmt.Println()
	row("latency", "count", "p50-ms", "p95-ms", "p99-ms", "max-ms")
	for _, l := range []struct {
		name string
		s    swarm.LatencyStats
	}{{"down-verdict", rep.DownLatency}, {"up-verdict", rep.UpLatency}, {"session", rep.SessionLatency}} {
		row(l.name, l.s.Count,
			fmt.Sprintf("%.1f", l.s.P50Ms), fmt.Sprintf("%.1f", l.s.P95Ms),
			fmt.Sprintf("%.1f", l.s.P99Ms), fmt.Sprintf("%.1f", l.s.MaxMs))
	}
	fmt.Println()
	row("population", fmt.Sprintf("%d live, %d crashed (joined %d, left %d, crashed %d, revived %d)",
		rep.LiveMembers, rep.CrashedMembers, rep.Joined, rep.Left, rep.Crashed, rep.Revived))
	row("watch edges", fmt.Sprintf("%d peers watched, %d wheel timers", rep.WatchedPeers, rep.WheelTimers))
	row("footprint", fmt.Sprintf("%.0f B/dapplet heap, %.2f goroutines/dapplet (%d goroutines)",
		rep.HeapBytesPerDapplet, rep.GoroutinesPerDapplet, rep.Goroutines))
	if rep.TickCost.Speedup > 0 {
		row("tick cost", fmt.Sprintf("linear scan %.0fns vs wheel %.0fns per tick at %d peers (%.0fx)",
			rep.TickCost.LinearNsPerTick, rep.TickCost.WheelNsPerTick, rep.TickCost.Peers, rep.TickCost.Speedup))
	}

	if *flagE11Out != "" {
		data, err := rep.JSON()
		if err != nil {
			log.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(*flagE11Out, data, 0o644); err != nil {
			log.Fatalf("write report: %v", err)
		}
		fmt.Printf("  (report written to %s)\n", *flagE11Out)
	}
}
