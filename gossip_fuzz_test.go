// Wire conformance for the gossip-era message kinds: the gossip
// substrate's pull/delta/rumor carriers, the directory's anti-entropy
// digest and delta, and the failure detector's indirect-probe and
// verdict-rumor kinds. The generic all-kinds round trip in
// wire_fuzz_test.go already covers them once; this file adds the
// adversarial angles — randomized values via testing/quick, truncation
// walks over every prefix of a valid frame, and a fuzz target aimed at
// the body decoders directly.
package repro

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

// gossipKinds are the message kinds the gossip substrate and its two
// consumers introduced.
var gossipKinds = []string{
	"gsp.pull", "gsp.delta", "gsp.rumor",
	"dir.digest", "dir.delta",
	"fail.iprobe", "fail.iprobe-rep", "fail.rumor",
}

// newBinaryKind instantiates a registered kind and asserts it rides the
// binary fast path — every gossip-era kind must, they are hot-path
// frames.
func newBinaryKind(t testing.TB, kind string) wire.BinaryMessage {
	t.Helper()
	m, err := wire.NewOf(kind)
	if err != nil {
		t.Fatalf("%s: not registered: %v", kind, err)
	}
	bm, ok := m.(wire.BinaryMessage)
	if !ok {
		t.Fatalf("%s: not a binary fast-path message", kind)
	}
	return bm
}

// quickRand seeds the randomized-value generator; fixed so failures
// reproduce.
var quickRand = rand.New(rand.NewSource(99))

// quickValue fills one message of the kind with randomized field values
// via testing/quick's generator.
func quickValue(t testing.TB, kind string) wire.BinaryMessage {
	t.Helper()
	m := newBinaryKind(t, kind)
	v, ok := quick.Value(reflect.TypeOf(m).Elem(), quickRand)
	if !ok {
		t.Fatalf("%s: quick.Value failed", kind)
	}
	reflect.ValueOf(m).Elem().Set(v)
	return m
}

// TestGossipKindsQuickRoundTrip drives each gossip-era kind through
// encode → decode with randomized values: the decode must reproduce the
// encoded message exactly, whatever the field contents.
func TestGossipKindsQuickRoundTrip(t *testing.T) {
	for _, kind := range gossipKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			prop := func() bool {
				m := quickValue(t, kind)
				bin, err := m.AppendBinary(nil)
				if err != nil {
					t.Fatalf("%s: encode: %v", kind, err)
				}
				back := newBinaryKind(t, kind)
				if err := back.UnmarshalBinary(bin); err != nil {
					t.Fatalf("%s: decode of own encoding: %v\nvalue: %#v", kind, err, m)
				}
				if !equalCanonical(m, back) {
					t.Fatalf("%s: round trip changed the message:\n in  %#v\n out %#v", kind, m, back)
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGossipKindsTruncationWalk encodes a populated frame of each kind
// and feeds the decoder every strict prefix: none may panic, and any
// prefix that happens to decode must re-encode to a decodable frame
// (no mangled half-reads escaping as valid messages).
func TestGossipKindsTruncationWalk(t *testing.T) {
	for _, kind := range gossipKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			m := newBinaryKind(t, kind)
			populateValue(reflect.ValueOf(m).Elem(), 5)
			bin, err := m.AppendBinary(nil)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			for cut := 0; cut < len(bin); cut++ {
				back := newBinaryKind(t, kind)
				if err := back.UnmarshalBinary(bin[:cut]); err != nil {
					continue
				}
				re, err := back.AppendBinary(nil)
				if err != nil {
					t.Fatalf("cut %d: decoded message does not re-encode: %v", cut, err)
				}
				again := newBinaryKind(t, kind)
				if err := again.UnmarshalBinary(re); err != nil {
					t.Fatalf("cut %d: re-encoded message does not decode: %v", cut, err)
				}
			}
		})
	}
}

// TestGossipNestedBodyRoundTrip exercises the nesting the substrate
// actually performs: a consumer body (directory digest) encoded via
// EncodeBody, carried opaque, and decoded back via DecodeBody.
func TestGossipNestedBodyRoundTrip(t *testing.T) {
	prop := func() bool {
		inner := quickValue(t, "dir.digest")
		enc, err := wire.EncodeBody(inner)
		if err != nil {
			t.Fatalf("EncodeBody: %v", err)
		}
		id, isBin := enc.ID(), enc.Binary()
		body := append([]byte(nil), enc.Bytes()...)
		enc.Release()
		back, err := wire.DecodeBody(id, isBin, body)
		if err != nil {
			t.Fatalf("DecodeBody: %v\nvalue: %#v", err, inner)
		}
		if !equalCanonical(inner, back) {
			t.Fatalf("nested round trip changed the digest:\n in  %#v\n out %#v", inner, back)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzGossipRoundTrip aims arbitrary bytes at each gossip-era kind's
// binary decoder: malformed input must only error, and anything that
// decodes must round-trip to a fixed point.
func FuzzGossipRoundTrip(f *testing.F) {
	for _, kind := range gossipKinds {
		m := newBinaryKind(f, kind)
		if bin, err := m.AppendBinary(nil); err == nil {
			f.Add(bin)
		}
		populateValue(reflect.ValueOf(m).Elem(), 3)
		if bin, err := m.AppendBinary(nil); err == nil {
			f.Add(bin)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range gossipKinds {
			m := newBinaryKind(t, kind)
			if err := m.UnmarshalBinary(data); err != nil {
				continue
			}
			bin, err := m.AppendBinary(nil)
			if err != nil {
				t.Fatalf("%s: decoded message does not re-encode: %v", kind, err)
			}
			back := newBinaryKind(t, kind)
			if err := back.UnmarshalBinary(bin); err != nil {
				t.Fatalf("%s: re-encoded message does not decode: %v", kind, err)
			}
			if !equalCanonical(m, back) {
				t.Fatalf("%s: round trip is not a fixed point:\n was %#v\n now %#v", kind, m, back)
			}
		}
	})
}

// equalCanonical compares two messages modulo nil-vs-empty slices and
// maps, which the codec legitimately canonicalizes (a zero count decodes
// as nil).
func equalCanonical(a, b wire.Msg) bool {
	return reflect.DeepEqual(canonMsg(a), canonMsg(b))
}

// canonMsg deep-copies a message with every empty slice and map
// normalized to nil.
func canonMsg(m wire.Msg) any {
	v := reflect.ValueOf(m).Elem()
	out := reflect.New(v.Type()).Elem()
	for i := 0; i < v.NumField(); i++ {
		f, o := v.Field(i), out.Field(i)
		if !o.CanSet() {
			continue
		}
		switch f.Kind() {
		case reflect.Slice:
			if f.Len() == 0 {
				continue // stays nil
			}
		case reflect.Map:
			if f.Len() == 0 {
				continue
			}
		}
		o.Set(f)
	}
	return out.Interface()
}
