// Command collabdesign runs the paper's second example (§2.1): a design
// team whose dapplets form a long-lived session. Designers edit document
// parts under per-part write tokens (§4.1) and every edit is propagated
// to the appropriate members; the program shows all replicas converging.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/designdoc"
	"repro/internal/scenario"
)

func main() {
	w, err := scenario.BuildDesign(context.Background(), scenario.DesignOptions{
		Designers: 4,
		Parts:     []string{"frame", "engine", "ui"},
		UseTokens: true,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	fmt.Println("design session up:", w.Handle.ID())

	// Everybody edits the shared engine spec concurrently; the part
	// token serializes writers and issues the version numbers.
	const editsEach = 3
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for i, ds := range w.Designers {
		wg.Add(1)
		go func(i int, ds *designdoc.Designer) {
			defer wg.Done()
			for k := 0; k < editsEach; k++ {
				p, err := ds.Edit("engine", fmt.Sprintf("designer-%d revision %d", i, k))
				if err != nil {
					log.Printf("edit failed: %v", err)
					return
				}
				mu.Lock()
				total++
				mu.Unlock()
				fmt.Printf("designer-%d wrote engine v%d\n", i, p.Version)
			}
		}(i, ds)
	}
	wg.Wait()

	// Convergence: every replica reaches the final version.
	for i, ds := range w.Designers {
		if !ds.WaitVersion("engine", total, 10*time.Second) {
			log.Fatalf("designer-%d never converged to v%d", i, total)
		}
	}
	p, _ := w.Designers[0].Part("engine")
	fmt.Printf("\nall %d replicas converged to engine v%d (last editor %s)\n",
		len(w.Designers), p.Version, p.Editor)
	if !w.Alloc.ConservationHolds() {
		log.Fatal("token conservation violated")
	}
	fmt.Println("token conservation invariant holds")
}
