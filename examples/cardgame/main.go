// Command cardgame runs the paper's ring-session example (§3.1): player
// dapplets linked to predecessor and successor in a ring, a dealer that
// deals hands and injects the turn token, and a win announcement.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	w, err := scenario.BuildCardGame(context.Background(), scenario.CardOptions{
		Players:  5,
		HandSize: 6,
		Ranks:    4,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	fmt.Printf("ring session %q with %d players, %d cards dealt\n",
		w.Handle.ID(), len(w.Players), w.TotalCards())

	res, err := w.Dealer.Run(w.Refs[0], 500)
	if err != nil {
		log.Fatal(err)
	}
	if res.Draw {
		fmt.Printf("draw after %d hops\n", res.Hops)
	} else {
		fmt.Printf("%s wins with four of rank %d after %d hops\n",
			res.Winner, res.Rank, res.Hops)
	}
	fmt.Printf("cards still in play: %d of %d (conservation)\n",
		w.CardsHeld(), w.TotalCards())
}
