// Command faultdemo demonstrates the failure subsystem: two dapplets
// watch each other with heartbeat failure detectors, one host crashes,
// the watcher's verdict escalates up -> suspect -> down, and after a
// restart the peer is detected alive again. The README's fault-injection
// quickstart is this program.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/wwds"
)

func main() {
	net := wwds.NewNetwork(wwds.WithSeed(1))
	defer net.Close()

	epA, err := net.Host("pasadena").BindAny()
	if err != nil {
		log.Fatal(err)
	}
	epB, err := net.Host("canberra").BindAny()
	if err != nil {
		log.Fatal(err)
	}
	watcher := wwds.NewDapplet("watcher", "demo", wwds.NewSimConn(epA))
	defer watcher.Stop()
	peer := wwds.NewDapplet("peer", "demo", wwds.NewSimConn(epB))
	defer peer.Stop()

	// Attach a detector to each dapplet; detection is bidirectional like
	// BFD, so both ends watch each other.
	cfg := wwds.FailureConfig{Interval: 10 * time.Millisecond, Multiplier: 2}
	verdicts := make(chan wwds.FailureEvent, 16)
	dw := wwds.AttachFailureDetector(watcher, cfg)
	dw.OnEvent(func(ev wwds.FailureEvent) { verdicts <- ev })
	dw.Watch("peer", peer.Addr())
	dp := wwds.AttachFailureDetector(peer, cfg)
	dp.Watch("watcher", watcher.Addr())

	// Power off the peer's machine: in-flight and inbound datagrams are
	// dropped until the host restarts.
	time.Sleep(5 * cfg.Interval) // let a heartbeat rhythm establish
	fmt.Println("crashing canberra...")
	crashed := time.Now()
	net.Crash("canberra")

	for ev := range verdicts {
		fmt.Printf("  %s is %s (%.0fms after the crash)\n",
			ev.Peer, ev.State, time.Since(crashed).Seconds()*1000)
		if ev.State == wwds.PeerDown {
			break
		}
	}

	fmt.Println("restarting canberra...")
	net.Restart("canberra")
	for ev := range verdicts {
		if ev.State == wwds.PeerUp {
			fmt.Printf("  %s is %s again\n", ev.Peer, ev.State)
			break
		}
	}
}
