// Command quickstart is the smallest complete wwds program: two dapplets
// on different simulated hosts, an outbox bound to a named inbox, one
// message each way, and a look at the logical clocks.
package main

import (
	"fmt"
	"log"

	"repro/wwds"
)

func main() {
	// A simulated world-wide network: one host in Pasadena, one far away.
	net := wwds.NewNetwork(wwds.WithSeed(1), wwds.WithDefaultDelay(wwds.WAN()))
	defer net.Close()

	epA, err := net.Host("caltech").BindAny()
	if err != nil {
		log.Fatal(err)
	}
	epB, err := net.Host("sydney").BindAny()
	if err != nil {
		log.Fatal(err)
	}

	// Dapplets: processes with inboxes, outboxes and a logical clock.
	mani := wwds.NewDapplet("mani", "demo", wwds.NewSimConn(epA))
	defer mani.Stop()
	peer := wwds.NewDapplet("peer", "demo", wwds.NewSimConn(epB))
	defer peer.Stop()

	// The peer has a named inbox, addressable world-wide by
	// (dapplet address, "mail") — §3.2 "Strings as Names for Inboxes".
	mail := peer.Inbox("mail")

	// Bind an outbox to it: a directed FIFO channel comes into existence.
	out := mani.Outbox("out")
	out.Add(mail.Ref())

	if err := out.Send(&wwds.Text{S: "greetings from Pasadena"}); err != nil {
		log.Fatal(err)
	}

	// Receive suspends until the inbox is non-empty (§3.2).
	env, err := mail.ReceiveEnvelope()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer received: %q\n", env.Body.(*wwds.Text).S)
	fmt.Printf("  from dapplet %s outbox %q\n", env.FromDapplet, env.FromOutbox)
	fmt.Printf("  sender stamped Lamport time %d; receiver clock is now %d\n",
		env.Lamport, peer.Clock().Now())

	// Reply on the reverse channel.
	back := peer.Outbox("back")
	back.Add(mani.Inbox("mail").Ref())
	if err := back.Send(&wwds.Text{S: "g'day from Sydney"}); err != nil {
		log.Fatal(err)
	}
	reply, err := mani.Inbox("mail").Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mani received: %q\n", reply.(*wwds.Text).S)

	fmt.Printf("critical-path virtual latency: %v (two WAN hops)\n", net.MaxVirtual())
}
