// Command calendar reproduces Figure 1 of the paper: a session of nine
// calendar dapplets and three secretary dapplets spread over three sites
// (Caltech, Rice, Tennessee) arranges an executive-committee meeting. It
// then runs the traditional sequential baseline over identical calendars
// and prints the comparison the paper's introduction argues for.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	const slots = 112 // 14 days x 8 hours

	opts := scenario.CalendarOptions{
		Sites:          3,
		MembersPerSite: 3,
		Hierarchical:   true,
		Slots:          slots,
		BusyProb:       0.65,
		CommonSlot:     90,
		Seed:           1996,
	}

	fmt.Println("== session-based scheduler (Figure 1 wiring) ==")
	w, err := scenario.BuildCalendar(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}
	before := w.Net.Stats()
	res, err := w.Scheduler.Schedule(context.Background(), 0, slots, 28)
	if err != nil {
		log.Fatal(err)
	}
	after := w.Net.Stats()
	fmt.Printf("meeting booked at slot %d (day %d, hour %d)\n",
		res.Slot, res.Slot/8, res.Slot%8)
	fmt.Printf("rounds=%d proposals=%d coordinator-calls=%d datagrams=%d virtual-latency=%v\n",
		res.Rounds, res.Proposals, res.Calls, after.Sent-before.Sent, after.MaxVirtual)
	for _, name := range w.MemberNames {
		if !w.Members[name].Busy(res.Slot) {
			log.Fatalf("%s did not book the slot", name)
		}
	}
	fmt.Println("all 9 calendars booked consistently")
	w.Close()

	fmt.Println()
	fmt.Println("== traditional sequential baseline (director phones each member) ==")
	w2, err := scenario.BuildCalendar(context.Background(), opts) // identical calendars (same seed)
	if err != nil {
		log.Fatal(err)
	}
	defer w2.Close()
	before = w2.Net.Stats()
	tres, err := w2.Traditional.Schedule(context.Background(), 0, slots, 28)
	if err != nil {
		log.Fatal(err)
	}
	after = w2.Net.Stats()
	fmt.Printf("meeting booked at slot %d\n", tres.Slot)
	fmt.Printf("rounds=%d proposals=%d director-calls=%d datagrams=%d virtual-latency=%v\n",
		tres.Rounds, tres.Proposals, tres.Calls, after.Sent-before.Sent, after.MaxVirtual)

	if res.Slot != tres.Slot {
		log.Fatalf("schedulers disagree: %d vs %d", res.Slot, tres.Slot)
	}
	fmt.Println()
	fmt.Println("both pick the same earliest slot; the session does it in parallel,")
	fmt.Println("so its critical path is a handful of WAN round trips instead of")
	fmt.Println("one round trip per member per phase.")
}
