package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/transport"
)

// BenchmarkAblationHierarchy compares the Figure 1 hierarchical wiring
// (per-site secretaries aggregating availability) against a flat session
// where the coordinator talks to every member over the WAN directly. The
// secretary layer trades local aggregation hops for fewer WAN round
// trips per member.
func BenchmarkAblationHierarchy(b *testing.B) {
	for _, mode := range []string{"hierarchical", "flat"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := scenario.BuildCalendar(context.Background(), scenario.CalendarOptions{
					Sites: 4, MembersPerSite: 4, Hierarchical: mode == "hierarchical",
					Slots: 64, BusyProb: 0.5, CommonSlot: 40, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := w.Scheduler.Schedule(context.Background(), 0, 64, 64); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st := w.Net.Stats()
				b.ReportMetric(float64(st.MaxVirtual.Milliseconds()), "vlat-ms")
				b.ReportMetric(float64(st.Sent), "datagrams")
				w.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationWindow sweeps the negotiation window: querying the
// whole horizon at once minimizes rounds but ships larger availability
// maps; narrow windows take more rounds. The common slot sits late in the
// horizon so windowed searches must iterate.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := scenario.BuildCalendar(context.Background(), scenario.CalendarOptions{
					Sites: 6, MembersPerSite: 1, Hierarchical: false,
					Slots: 64, BusyProb: 1.0, CommonSlot: 60, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := w.Scheduler.Schedule(context.Background(), 0, 64, window)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(res.Rounds), "rounds")
				b.ReportMetric(float64(w.Net.MaxVirtual().Milliseconds()), "vlat-ms")
				w.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationRTO sweeps the reliable layer's retransmission timeout
// under 10% loss: too-small RTOs waste bandwidth on spurious retransmits,
// too-large RTOs stall the window on every loss.
func BenchmarkAblationRTO(b *testing.B) {
	const msgs = 500
	for _, rto := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		b.Run(fmt.Sprintf("rto=%s", rto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net := netsim.New(netsim.WithSeed(int64(i + 1)))
				net.SetLink("a", "b", netsim.LinkParams{Loss: 0.10})
				epA, _ := net.Host("a").Bind(1)
				epB, _ := net.Host("b").Bind(1)
				cfg := transport.Config{RTO: rto, MaxRetries: 200, Window: 32}
				ra := transport.NewReliable(transport.NewSimConn(epA), cfg)
				rb := transport.NewReliable(transport.NewSimConn(epB), cfg)
				payload := make([]byte, 128)
				b.StartTimer()
				done := make(chan error, 1)
				go func() {
					for k := 0; k < msgs; k++ {
						if _, _, err := rb.Recv(); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}()
				for k := 0; k < msgs; k++ {
					if err := ra.Send(rb.LocalAddr(), payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st := ra.Stats()
				b.ReportMetric(float64(st.Retransmits)/float64(msgs), "retx/msg")
				ra.Close()
				rb.Close()
				net.Close()
				b.StartTimer()
			}
		})
	}
}
