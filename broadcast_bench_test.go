package repro

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// benchE14 runs one E14 broadcast cell and surfaces its headline numbers
// as benchmark metrics.
func benchE14(b *testing.B, tree bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunBroadcast(context.Background(), scenario.BroadcastOptions{
			Participants: 128,
			Messages:     16,
			Tree:         tree,
			Seed:         int64(14 + i),
		})
		if err != nil {
			b.Fatalf("broadcast run melted: %v", err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.SenderNsPerMsg, "send-ns/msg")
			b.ReportMetric(float64(res.RootBytesOut), "root-B")
			b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99-ms")
			b.ReportMetric(float64(res.MaxQueueDepth), "maxq")
		}
	}
}

// BenchmarkE14BroadcastSmoke is the CI-sized large-group broadcast A/B
// (E14): 128 participants, flat per-destination fan-out vs relay-tree
// multicast, asserting full in-order delivery in both modes. wwbench
// -exp e14 prints the full table at 100/1k/10k.
func BenchmarkE14BroadcastSmoke(b *testing.B) {
	b.Run("flat", func(b *testing.B) { benchE14(b, false) })
	b.Run("tree", func(b *testing.B) { benchE14(b, true) })
}
